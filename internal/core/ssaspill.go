package core

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/disjoint"
	"repro/internal/iloc"
	"repro/internal/liveness"
	"repro/internal/ssa"
)

// ssaSpill is the SSA-form spill-everywhere allocator, after Bouchez,
// Darte and Rastello ("On the Complexity of Spill Everywhere under SSA
// Form"): the routine is converted to pruned SSA per register class
// (internal/ssa over the sparse liveness solution of internal/liveness,
// per the Tavares et al. sparse-analysis framing), every SSA value is
// spilled at its definition and reloaded at each use, and φ-nodes are
// resolved entirely in memory — the φ's destination and arguments form a
// congruence web that shares one frame slot, so the φ itself vanishes
// without a copy. Out of conventional SSA (which ssa.Build produces
// directly from non-SSA input) φ-congruent values never interfere, so
// the shared slot is sound.
//
// Compared with the plain spill-everywhere construction this buys three
// things from the SSA form: slots are per *web* rather than per original
// register (two independent webs of one register no longer share a
// frame word), pruned φ-insertion keeps dead merges from materializing,
// and a value whose slot is never read — no non-φ use anywhere in its
// web — skips its store outright. Like spillEverywhere it is a linear,
// non-iterating construction: it terminates on any verifiable input and
// can never spill-loop, which is what lets it stand as a first-class
// strategy rather than only a degradation path.
//
// Scratch registers are colors 1 and 2 of each bank, dead between
// instructions, so nothing is live across a call and the caller-save
// discipline holds trivially.
func ssaSpill(input *iloc.Routine, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, recovered(input.Name, "ssa-spill", 0, r)
		}
	}()

	m := opts.Machine
	rt := input.Clone()
	if err := cfg.Build(rt); err != nil {
		return nil, err
	}
	if _, err := cfg.SplitCriticalEdges(rt); err != nil {
		return nil, err
	}
	tree, _, err := cfg.Analyze(rt)
	if err != nil {
		return nil, err
	}

	// Liveness for both classes must precede SSA construction (the
	// solver rejects φ-nodes), then each class converts to pruned SSA.
	var lives [iloc.NumClasses]*liveness.Info
	for c := iloc.Class(0); c < iloc.NumClasses; c++ {
		lives[c] = liveness.Compute(rt, c)
	}
	var graphs [iloc.NumClasses]*ssa.Graph
	for c := iloc.Class(0); c < iloc.NumClasses; c++ {
		g, err := ssa.Build(rt, c, tree, lives[c])
		if err != nil {
			return nil, fmt.Errorf("core: ssa-spill: %w", err)
		}
		graphs[c] = g
	}

	// φ-congruence webs: union every φ destination with its arguments.
	// The web is the unit of slot assignment; deleting the φ leaves its
	// data flow to the shared slot.
	var webs [iloc.NumClasses]*disjoint.Sets
	for c := range graphs {
		webs[c] = disjoint.New(graphs[c].NumValues)
	}
	for _, b := range rt.Blocks {
		for _, in := range b.Instrs {
			if in.Op != iloc.OpPhi {
				continue
			}
			for _, arg := range in.Phi.Args {
				webs[in.Dst.Class].Union(in.Dst.N, arg.N)
			}
		}
	}

	// A web's slot is read only by the non-φ uses of its values; a web
	// with none never needs its stores (the defining instructions still
	// execute — into a scratch color — but nothing is kept).
	var slotRead [iloc.NumClasses][]bool
	for c, g := range graphs {
		slotRead[c] = make([]bool, g.NumValues)
		for v := 1; v < g.NumValues; v++ {
			for _, use := range g.UsesOf[v] {
				if use.Op != iloc.OpPhi {
					slotRead[c][webs[c].Find(v)] = true
					break
				}
			}
		}
	}

	frameBase := scanFrameBase(rt)
	nextSlot := 0
	var slots [iloc.NumClasses]map[int]int64
	for c := range slots {
		slots[c] = make(map[int]int64)
	}
	slotFor := func(c iloc.Class, n int) int64 {
		root := webs[c].Find(n)
		if off, ok := slots[c][root]; ok {
			return off
		}
		off := frameBase + int64(nextSlot)*8
		nextSlot++
		slots[c][root] = off
		return off
	}

	var st IterationStats
	for _, b := range rt.Blocks {
		out := make([]*iloc.Instr, 0, 3*len(b.Instrs))
		for _, in := range b.Instrs {
			if in.Op == iloc.OpPhi {
				continue // resolved in memory: dest and args share one slot
			}
			// Reload each distinct spilled use into its own scratch color.
			assigned := map[iloc.Reg]iloc.Reg{}
			next := [iloc.NumClasses]int{1, 1}
			for i := 0; i < in.Op.NSrc(); i++ {
				u := in.Src[i]
				if !u.Valid() || u.N == 0 {
					continue
				}
				t, ok := assigned[u]
				if !ok {
					col := next[u.Class]
					next[u.Class]++
					if col > m.K(u.Class) {
						return nil, fmt.Errorf("core: ssa-spill: %q needs %d scratch %s registers, machine %s has %d",
							in, col, u.Class, m.Name, m.K(u.Class))
					}
					t = iloc.Reg{Class: u.Class, N: col}
					assigned[u] = t
					out = append(out, &iloc.Instr{
						Op:  reloadOp(u.Class),
						Dst: t, Src: [2]iloc.Reg{iloc.FP, iloc.NoReg},
						Imm: slotFor(u.Class, u.N), IsSpill: true,
					})
					st.Spilled[u.Class]++
				}
				in.Src[i] = t
			}
			// The definition computes into scratch color 1 (written only
			// after the sources are read); its store is elided when the
			// web's slot is never read.
			if d := in.Def(); d.Valid() && d.N != 0 {
				t := iloc.Reg{Class: d.Class, N: 1}
				in.Dst = t
				out = append(out, in)
				if slotRead[d.Class][webs[d.Class].Find(d.N)] {
					out = append(out, &iloc.Instr{
						Op:  storeOp(d.Class),
						Dst: iloc.NoReg,
						Src: [2]iloc.Reg{t, iloc.FP},
						Imm: slotFor(d.Class, d.N), IsSpill: true,
					})
				}
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}

	rt.FrameWords = int(frameBase/8) + nextSlot
	rt.Allocated = true
	for c := range rt.NextReg {
		rt.NextReg[c] = m.Regs[c]
		rt.CallerSave[c] = m.CallerSave
	}

	ranges := len(slots[iloc.ClassInt]) + len(slots[iloc.ClassFlt])
	st.Passes = []PassStat{{Name: "ssa-spill", Spilled: ranges}}
	return &Result{
		Routine:       rt,
		Iterations:    []IterationStats{st},
		SpilledRanges: ranges,
		Mode:          opts.Mode,
		Machine:       m,
	}, nil
}
