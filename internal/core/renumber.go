package core

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/disjoint"
	"repro/internal/dom"
	"repro/internal/iloc"
	"repro/internal/liveness"
	"repro/internal/remat"
	"repro/internal/ssa"
)

// renumber implements §4.1's six-step algorithm for both classes:
//
//  1. liveness (needed for pruning),
//  2. pruned φ-insertion on dominance frontiers,
//  3. renaming to values + tag initialization,
//  4. sparse tag propagation,
//  5. unioning copies whose endpoints carry identical inst tags,
//  6. unioning φ operands with the φ's tag and inserting splits for the
//     rest, then removing φ-nodes.
//
// In ModeChaitin steps 4–6 collapse to "union every value reaching each
// φ" with no splits, recreating Chaitin's live ranges, and tags are
// computed afterwards by his whole-range rule.
func (a *allocator) renumber(tree *dom.Tree, loops []*cfg.Loop) (splits int, err error) {
	// Liveness for both classes must precede SSA construction (the
	// liveness solver rejects φ-nodes).
	var lives [iloc.NumClasses]*liveness.Info
	for c := iloc.Class(0); c < iloc.NumClasses; c++ {
		lives[c] = liveness.Compute(a.rt, c)
	}
	var graphs [iloc.NumClasses]*ssa.Graph
	for c := iloc.Class(0); c < iloc.NumClasses; c++ {
		g, err := ssa.Build(a.rt, c, tree, lives[c])
		if err != nil {
			return 0, fmt.Errorf("core: renumber: %w", err)
		}
		graphs[c] = g
	}

	for c := iloc.Class(0); c < iloc.NumClasses; c++ {
		cs := &classState{c: c}
		a.classes[c] = cs
		g := graphs[c]
		cs.sets = disjoint.New(g.NumValues)

		if a.opts.Mode == ModeRemat {
			cs.tags = remat.Propagate(g)
			splits += a.renumberRemat(cs)
		} else {
			cs.tags = make([]remat.Tag, g.NumValues)
			a.renumberChaitin(cs)
		}

		a.rewriteToRoots(cs)
		// In ModeChaitin tags are computed after coalescing (the whole-
		// range rule must not see copies that coalescing will delete);
		// see round().
	}
	// Loop-based splitting (§6) runs once both classes are φ-free — and
	// only in the first round: re-splitting ranges that spill code
	// already fragmented compounds pressure every iteration and can keep
	// a tight machine from ever converging.
	if a.opts.Mode == ModeRemat && a.roundNo == 0 &&
		a.opts.Split != SplitNone && a.opts.Split != SplitAtPhis {
		for _, cs := range a.classes {
			splits += a.applyLoopSplits(cs, loops)
		}
	}
	return splits, nil
}

// renumberRemat performs steps 5 and 6 for one class and returns the
// number of split copies inserted.
func (a *allocator) renumberRemat(cs *classState) int {
	c := cs.c

	// Step 5: copies with identical inst tags are unioned and removed.
	for _, b := range a.rt.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op.IsCopy() && in.Dst.Class == c && !in.Src[0].IsFP() {
				td, ts := cs.tags[in.Dst.N], cs.tags[in.Src[0].N]
				if td.Kind == remat.Inst && remat.Equal(td, ts) {
					root, _ := cs.sets.Union(in.Dst.N, in.Src[0].N)
					cs.tags[root] = td
					continue // copy removed
				}
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}

	// Step 6: φ operands. Group the needed splits by predecessor block so
	// each group can be sequentialized as one parallel copy.
	pending := make(map[*iloc.Block][]copyPair)
	splits := 0
	for _, b := range a.rt.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op != iloc.OpPhi || in.Dst.Class != c {
				kept = append(kept, in)
				continue
			}
			res := in.Dst.N
			for i, arg := range in.Phi.Args {
				if a.opts.Split != SplitAtPhis && remat.Equal(cs.tags[arg.N], cs.tags[res]) {
					root, _ := cs.sets.Union(arg.N, res)
					cs.tags[root] = remat.Meet(cs.tags[arg.N], cs.tags[res])
					continue
				}
				pred := b.Preds[i]
				pending[pred] = append(pending[pred], copyPair{dst: res, src: arg.N})
				splits++
			}
			// φ removed (not kept).
		}
		b.Instrs = kept
	}

	// Emit each block's splits as a sequentialized parallel copy. The
	// destinations are φ results (distinct), the sources end-of-block
	// values; a cycle (swap) needs one temporary.
	for pred, pairs := range pending {
		a.emitParallelCopy(cs, pred, pairs)
	}
	return splits
}

// copyPair is one dst ← src element of a parallel copy.
type copyPair struct{ dst, src int }

// emitParallelCopy appends split copies for the (dst ← src) pairs to the
// end of pred (before its terminator), in an order that preserves the
// parallel-copy semantics of the φ-nodes they replace.
func (a *allocator) emitParallelCopy(cs *classState, pred *iloc.Block, pairs []copyPair) {
	// Work on union-find roots? No: these are SSA value names, pre-union
	// within this step they are distinct values; dst names are φ results
	// and never sources of the same parallel copy unless a φ result feeds
	// another φ through this same edge.
	emit := func(dst, src int) {
		cp := iloc.MakeMov(iloc.Reg{Class: cs.c, N: dst}, iloc.Reg{Class: cs.c, N: src})
		cp.IsSplit = true
		pred.AppendBeforeTerminator(cp)
	}
	remaining := append([]copyPair(nil), pairs...)
	for len(remaining) > 0 {
		progressed := false
		for i := 0; i < len(remaining); i++ {
			p := remaining[i]
			// Safe to emit if no other pending copy still reads p.dst.
			blocked := false
			for j, q := range remaining {
				if j != i && q.src == p.dst {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			emit(p.dst, p.src)
			remaining = append(remaining[:i], remaining[i+1:]...)
			progressed = true
			i--
		}
		if progressed {
			continue
		}
		// Pure cycle: break it by saving one source in a fresh value.
		brk := remaining[0]
		tmp := a.rt.NewReg(cs.c)
		cs.sets.Grow(a.rt.NumRegs(cs.c))
		cs.tags = append(cs.tags, cs.tags[cs.sets.Find(brk.src)])
		emit(tmp.N, brk.src)
		for i := range remaining {
			if remaining[i].src == brk.src {
				remaining[i].src = tmp.N
			}
		}
	}
}

// renumberChaitin unions every value reaching each φ with the φ's result
// and deletes the φ — the paper's description of the pre-rematerialization
// renumber ("form live ranges by unioning together all the values
// reaching each φ-node").
func (a *allocator) renumberChaitin(cs *classState) {
	for _, b := range a.rt.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op != iloc.OpPhi || in.Dst.Class != cs.c {
				kept = append(kept, in)
				continue
			}
			for _, arg := range in.Phi.Args {
				cs.sets.Union(in.Dst.N, arg.N)
			}
		}
		b.Instrs = kept
	}
}

// rewriteToRoots renames every class-c register in the code to the
// representative of its live range.
func (a *allocator) rewriteToRoots(cs *classState) {
	c := cs.c
	a.rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		for i := 0; i < in.Op.NSrc(); i++ {
			if in.Src[i].Class == c && in.Src[i].N != 0 {
				in.Src[i].N = cs.find(in.Src[i].N)
			}
		}
		if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
			in.Dst.N = cs.find(in.Dst.N)
		}
	})
	// Fold tags onto roots so tagOf is consistent regardless of which
	// member the map was written through.
	for v := 1; v < cs.sets.Len(); v++ {
		r := cs.find(v)
		if r != v && v < len(cs.tags) {
			cs.tags[r] = remat.Meet(cs.tags[r], cs.tags[v])
		}
	}
}

// computeChaitinTags applies Chaitin's rule after live ranges are formed:
// a live range is never-killed only if every definition in the code is
// the same never-killed instruction.
func (a *allocator) computeChaitinTags(cs *classState) {
	n := a.rt.NumRegs(cs.c)
	if len(cs.tags) < n {
		cs.tags = append(cs.tags, make([]remat.Tag, n-len(cs.tags))...)
	}
	for i := range cs.tags {
		cs.tags[i] = remat.TopTag()
	}
	a.rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		d := in.Def()
		if !d.Valid() || d.Class != cs.c || d.N == 0 {
			return
		}
		var t remat.Tag
		if remat.NeverKilled(in) {
			t = remat.InstTag(in)
		} else {
			t = remat.BottomTag()
		}
		cs.tags[d.N] = remat.Meet(cs.tags[d.N], t)
	})
	// Ranges with no visible def (cannot happen in verified code) and ⊤
	// leftovers become ⊥.
	for i := range cs.tags {
		if cs.tags[i].Kind == remat.Top {
			cs.tags[i] = remat.BottomTag()
		}
	}
}

// disjointNewFor builds a fresh union-find forest sized to the routine's
// integer register space (white-box test helper).
func disjointNewFor(rt *iloc.Routine) *disjoint.Sets {
	return disjoint.New(rt.NumRegs(iloc.ClassInt))
}
