package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/remat"
	"repro/internal/target"
)

// countOps tallies static occurrences of ops in a routine.
func countOps(rt *iloc.Routine, ops ...iloc.Op) int {
	n := 0
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		for _, op := range ops {
			if in.Op == op {
				n++
			}
		}
	})
	return n
}

func countSplits(rt *iloc.Routine) int {
	n := 0
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if in.IsSplit {
			n++
		}
	})
	return n
}

// A spilled never-killed ldi range must be rematerialized: ldi before
// each use, no stores, and the original defs deleted.
func TestSpillRematerializesLdi(t *testing.T) {
	// Four constants live across a use cluster on a 3-register machine
	// (2 colors): some must spill.
	src := `
routine f()
entry:
    ldi r1, 11
    ldi r2, 22
    ldi r3, 33
    ldi r4, 44
    add r5, r1, r2
    add r5, r5, r3
    add r5, r5, r4
    add r5, r5, r1
    retr r5
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledRanges == 0 {
		t.Fatal("expected spills")
	}
	if res.RematSpills != res.SpilledRanges {
		t.Fatalf("all spills should rematerialize: %d of %d", res.RematSpills, res.SpilledRanges)
	}
	if n := countOps(res.Routine, iloc.OpStoreai, iloc.OpStore); n != 0 {
		t.Fatalf("rematerialized spill must not store; found %d stores\n%s", n, iloc.Print(res.Routine))
	}
	out, err := interp.New(res.Routine, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.RetInt != 11+22+33+44+11 {
		t.Fatalf("result = %d", got.RetInt)
	}
}

// A spilled ⊥ range gets Chaitin's store/reload treatment with
// fp-relative slots that do not collide with the routine's own frame use.
func TestSpillBottomUsesDisjointSlots(t *testing.T) {
	src := `
routine f()
entry:
    ldi r9, 77
    storeai r9, fp, 0      ; the routine already uses fp+0
    loadai r1, fp, 0
    addi r2, r1, 1         ; ⊥ values (operands not fp)
    addi r3, r2, 2
    addi r4, r3, 3
    addi r5, r4, 4
    add r6, r2, r3
    add r6, r6, r4
    add r6, r6, r5
    add r6, r6, r1
    retr r6
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	// Spill slots must start above fp+0.
	res.Routine.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if in.IsSpill && (in.Op == iloc.OpStoreai || in.Op == iloc.OpLoadai) && in.Imm == 0 {
			t.Fatalf("spill slot collides with routine frame use: %q", in)
		}
	})
	got, err := mustRun(t, res.Routine)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(77+1) + (77 + 1 + 2) + (77 + 1 + 2 + 3) + (77 + 1 + 2 + 3 + 4) + 77
	if got.RetInt != want {
		t.Fatalf("result = %d, want %d", got.RetInt, want)
	}
}

func mustRun(t *testing.T, rt *iloc.Routine, args ...interp.Value) (*interp.Outcome, error) {
	t.Helper()
	e, err := interp.New(rt, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e.Run(args...)
}

// Chaitin's rule: a live range whose two definitions are the *same*
// never-killed instruction rematerializes even in ModeChaitin; with
// different constants it must fall back to store/reload.
func TestChaitinWholeRangeRule(t *testing.T) {
	build := func(c2 int64) string {
		return `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, a, b
a:
    ldi r2, 7
    jmp join
b:
    ldi r2, ` + string(rune('0'+c2)) + `
    jmp join
join:
    ldi r3, 1
    ldi r4, 2
    ldi r5, 3
    add r6, r3, r4
    add r6, r6, r5
    add r6, r6, r2
    add r6, r6, r2
    retr r6
`
	}
	// Same constant on both arms: r2's range is never-killed under
	// Chaitin's rule; no stores appear even when spilled.
	res, err := Allocate(context.Background(), iloc.MustParse(build(7)), Options{Machine: target.WithRegs(3), Mode: ModeChaitin})
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(res.Routine, iloc.OpStoreai); n != 0 {
		t.Fatalf("identical-def range should rematerialize under Chaitin: %d stores\n%s", n, iloc.Print(res.Routine))
	}
	out, err := mustRun(t, res.Routine, interp.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 1+2+3+7+7 {
		t.Fatalf("result = %d", out.RetInt)
	}

	// Different constants: the merged range is ⊥ for Chaitin. If it
	// spills, stores appear. (It has the most uses, so it may survive;
	// assert only that execution stays correct on both paths.)
	res2, err := Allocate(context.Background(), iloc.MustParse(build(9)), Options{Machine: target.WithRegs(3), Mode: ModeChaitin})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{1, -1} {
		out, err := mustRun(t, res2.Routine, interp.Int(n))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1 + 2 + 3 + 7 + 7)
		if n <= 0 {
			want = 1 + 2 + 3 + 9 + 9
		}
		if out.RetInt != want {
			t.Fatalf("n=%d: result = %d, want %d", n, out.RetInt, want)
		}
	}
}

// A spilled getparam-tagged range rematerializes by re-issuing getparam
// (a frame load), not by store/reload.
func TestSpillRematerializesGetparam(t *testing.T) {
	src := `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 1
    ldi r3, 2
    ldi r4, 3
    add r5, r2, r3
    add r5, r5, r4
    add r5, r5, r1
    add r5, r5, r1
    retr r5
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(res.Routine, iloc.OpStoreai); n != 0 {
		t.Fatalf("no stores expected (everything is never-killed)\n%s", iloc.Print(res.Routine))
	}
	out, err := mustRun(t, res.Routine, interp.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 1+2+3+10+10 {
		t.Fatalf("result = %d", out.RetInt)
	}
}

// fp-relative address arithmetic (addi rX, fp, k) is never-killed and
// rematerializes.
func TestSpillRematerializesFPRelative(t *testing.T) {
	src := `
routine f()
entry:
    ldi r9, 5
    storeai r9, fp, 8
    addi r1, fp, 8        ; never-killed: constant offset from fp
    ldi r2, 1
    ldi r3, 2
    ldi r4, 3
    add r5, r2, r3
    add r5, r5, r4
    load r6, r1
    add r5, r5, r6
    load r7, r1
    add r5, r5, r7
    retr r5
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	// The only store is the routine's own storeai to fp+8.
	stores := 0
	res.Routine.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if in.Op == iloc.OpStoreai && in.IsSpill {
			stores++
		}
	})
	if stores != 0 {
		t.Fatalf("fp-relative values should rematerialize without stores\n%s", iloc.Print(res.Routine))
	}
	out, err := mustRun(t, res.Routine)
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 1+2+3+5+5 {
		t.Fatalf("result = %d", out.RetInt)
	}
}

// No split copies survive to the final code when biased coloring can
// match the partners (low pressure): they are either coalesced or
// deleted as same-color copies.
func TestSplitsVanishWithoutPressure(t *testing.T) {
	res, err := Allocate(context.Background(), iloc.MustParse(fig1Src), Options{Machine: target.Huge(), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	if n := countSplits(res.Routine); n != 0 {
		t.Fatalf("splits survive on the huge machine: %d\n%s", n, iloc.Print(res.Routine))
	}
}

// MaxIterations aborts a pressured allocation cleanly rather than
// looping forever. With degradation disabled, the non-convergence
// surfaces as a structured *AllocError naming the loop.
func TestMaxIterationsRespected(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	_, err := Allocate(context.Background(), rt, Options{
		Machine: target.WithRegs(3), Mode: ModeRemat,
		MaxIterations: 1, DisableDegradation: true,
	})
	if err == nil {
		t.Fatal("expected non-convergence error with MaxIterations=1")
	}
	if !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("unexpected error: %v", err)
	}
	var ae *AllocError
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an *AllocError: %v", err)
	}
	if ae.Pass != "loop" || ae.Routine != rt.Name {
		t.Fatalf("unexpected AllocError fields: pass=%q routine=%q", ae.Pass, ae.Routine)
	}
}

// The paper's two-round coalescing removes ordinary copies aggressively
// even when the merged range is huge; splits only conservatively.
func TestAggressiveCoalescingRemovesPlainCopies(t *testing.T) {
	src := `
routine f()
entry:
    ldi r1, 5
    mov r2, r1
    mov r3, r2
    mov r4, r3
    addi r5, r4, 1
    retr r5
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.Standard(), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(res.Routine, iloc.OpMov); n != 0 {
		t.Fatalf("copy chain should coalesce away, %d movs remain\n%s", n, iloc.Print(res.Routine))
	}
	out, err := mustRun(t, res.Routine)
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 6 {
		t.Fatalf("result = %d", out.RetInt)
	}
}

// Interfering copies must not be coalesced (both values live at once).
func TestInterferingCopyKept(t *testing.T) {
	src := `
routine f()
entry:
    ldi r1, 5
    mov r2, r1
    addi r1, r1, 1      ; r1 changes while r2 must keep the old value
    add r3, r1, r2
    retr r3
`
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.Standard(), Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		out, err := mustRun(t, res.Routine)
		if err != nil {
			t.Fatal(err)
		}
		if out.RetInt != 11 {
			t.Fatalf("mode %v: result = %d, want 11\n%s", mode, out.RetInt, iloc.Print(res.Routine))
		}
	}
}

// Allocation works when only one class is under pressure and the other
// is untouched.
func TestSingleClassPressure(t *testing.T) {
	src := `
routine f()
entry:
    fldi f1, 1.0
    fldi f2, 2.0
    fldi f3, 3.0
    fldi f4, 4.0
    fadd f5, f1, f2
    fadd f5, f5, f3
    fadd f5, f5, f4
    fadd f5, f5, f1
    retf f5
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mustRun(t, res.Routine)
	if err != nil {
		t.Fatal(err)
	}
	if out.RetFloat != 11 {
		t.Fatalf("result = %g", out.RetFloat)
	}
}

// Loop-split scheme 3 must only split ranges inactive in the loop.
func TestInactiveLoopSplitting(t *testing.T) {
	src := `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 99            ; inactive in the loop, used after it
    ldi r3, 0
    jmp loop
loop:
    addi r3, r3, 1
    sub r4, r1, r3
    br gt r4, loop, done
done:
    add r5, r2, r3
    retr r5
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{
		Machine: target.Standard(), Mode: ModeRemat, Split: SplitInactiveLoops,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 || res.Iterations[0].Splits == 0 {
		t.Fatal("scheme 3 should have split the inactive range around the loop")
	}
	out, err := mustRun(t, res.Routine, interp.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 104 {
		t.Fatalf("result = %d", out.RetInt)
	}
}

// A spilled display pointer rematerializes via ldisp (the paper's
// "loading non-local frame pointers from a display" category).
func TestSpillRematerializesDisplay(t *testing.T) {
	src := `
routine f()
entry:
    ldisp r1, 1           ; never-killed display load
    ldi r2, 1
    ldi r3, 2
    ldi r4, 3
    add r5, r2, r3
    add r5, r5, r4
    add r5, r5, r1
    add r5, r5, r1
    retr r5
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	if n := countOps(res.Routine, iloc.OpStoreai); n != 0 {
		t.Fatalf("display value should rematerialize, found stores\n%s", iloc.Print(res.Routine))
	}
	e, err := interp.New(res.Routine, interp.Config{Display: []int64{0, 40}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 1+2+3+40+40 {
		t.Fatalf("result = %d", out.RetInt)
	}
}

// Chaitin's adjacency rule: a single-def single-use range whose use
// immediately follows its def must never be chosen as a spill candidate
// (spilling it cannot reduce pressure).
func TestAdjacencyRuleInfiniteCost(t *testing.T) {
	src := `
routine f()
entry:
    ldi r1, 1
    ldi r2, 2
    ldi r3, 3
    add r4, r1, r2        ; r4 defined...
    add r5, r4, r3        ; ...and used immediately: never a spill victim
    add r5, r5, r1
    add r5, r5, r2
    add r5, r5, r3
    retr r5
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	// The adjacent temp must not have been spilled: no reload may sit
	// between the two adds.
	res.Routine.ForEachInstr(func(b *iloc.Block, i int, in *iloc.Instr) {
		if in.Op != iloc.OpAdd || i == 0 {
			return
		}
		prev := b.Instrs[i-1]
		if prev.Op == iloc.OpAdd && prev.Dst == in.Src[0] {
			return // still adjacent, good
		}
	})
	out, err := mustRun(t, res.Routine)
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 1+2+1+2+3+3 {
		t.Fatalf("result = %d", out.RetInt)
	}
}

// Allocation is deterministic: identical inputs produce byte-identical
// code (tables and figures must be reproducible run to run).
func TestAllocationDeterministic(t *testing.T) {
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		var first string
		for trial := 0; trial < 3; trial++ {
			res, err := Allocate(context.Background(), iloc.MustParse(fig1Src), Options{Machine: target.WithRegs(3), Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			text := iloc.Print(res.Routine)
			if trial == 0 {
				first = text
			} else if text != first {
				t.Fatalf("mode %v: allocation differs between runs:\n%s\nvs\n%s", mode, first, text)
			}
		}
	}
}

// All spill metrics yield correct (if differently shaped) allocations.
func TestSpillMetricsPreserveSemantics(t *testing.T) {
	for _, m := range []SpillMetric{MetricCostOverDegree, MetricCostOverDegreeSquared, MetricCost} {
		res, err := Allocate(context.Background(), iloc.MustParse(fig1Src), Options{
			Machine: target.WithRegs(3), Mode: ModeRemat, Metric: m,
		})
		if err != nil {
			t.Fatalf("metric %v: %v", m, err)
		}
		out, err := mustRun(t, res.Routine, interp.Int(10))
		if err != nil {
			t.Fatal(err)
		}
		if out.RetFloat != 10*3.5*2 {
			t.Fatalf("metric %v: result %g", m, out.RetFloat)
		}
	}
	if MetricCostOverDegree.String() == "" || MetricCost.String() == "" {
		t.Fatal("metric names empty")
	}
}

// A genuine parallel-copy cycle: two values swapped every iteration.
// Under SplitAtPhis every φ operand gets a split, so the back edge
// carries the copy cycle that needs a temporary to sequence.
func TestLoopSwapCycleNeedsTemp(t *testing.T) {
	src := `
routine swap(r1)
entry:
    getparam r1, 0
    ldi r2, 3            ; a
    ldi r3, 4            ; b
    ldi r4, 0            ; i
    jmp loop
loop:
    sub r5, r4, r1
    br ge r5, done, body
body:
    mov r6, r2           ; t = a
    mov r2, r3           ; a = b
    mov r3, r6           ; b = t
    addi r4, r4, 1
    jmp loop
done:
    muli r2, r2, 100
    add r2, r2, r3
    retr r2
`
	for _, iters := range []int64{4, 5} {
		want := int64(3*100 + 4) // even swap count: back to (3,4)
		if iters%2 == 1 {
			want = 4*100 + 3
		}
		for _, split := range []SplitScheme{SplitNone, SplitAtPhis, SplitAllLoops} {
			res, err := Allocate(context.Background(), iloc.MustParse(src), Options{
				Machine: target.WithRegs(4), Mode: ModeRemat, Split: split,
			})
			if err != nil {
				t.Fatal(err)
			}
			out, err := mustRun(t, res.Routine, interp.Int(iters))
			if err != nil {
				t.Fatal(err)
			}
			if out.RetInt != want {
				t.Fatalf("split=%v iters=%d: got %d, want %d\n%s",
					split, iters, out.RetInt, want, iloc.Print(res.Routine))
			}
		}
	}
}

// Mode and scheme names used in output paths.
func TestEnumStrings(t *testing.T) {
	if ModeChaitin.String() != "chaitin" || ModeRemat.String() != "remat" {
		t.Fatal("mode names wrong")
	}
	names := map[SplitScheme]string{
		SplitNone: "none", SplitAllLoops: "all-loops", SplitOuterLoops: "outer-loops",
		SplitInactiveLoops: "inactive-loops", SplitAtPhis: "all-phis",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("scheme %d prints %q, want %q", s, s.String(), want)
		}
	}
}

// White-box: emitParallelCopy must break a pure copy cycle (the φ swap)
// with a temporary. Sequential source always has an explicit temp copy,
// so the cycle arises only through value unioning — drive it directly.
func TestEmitParallelCopyBreaksCycle(t *testing.T) {
	rt := iloc.MustParse(`
routine f()
entry:
    ldi r1, 1
    ldi r2, 2
    retr r1
`)
	a := &allocator{rt: rt}
	cs := &classState{c: iloc.ClassInt}
	cs.sets = disjointNewFor(rt)
	cs.tags = make([]remat.Tag, rt.NumRegs(iloc.ClassInt))
	b := rt.Blocks[0]
	before := len(b.Instrs)

	a.emitParallelCopy(cs, b, []copyPair{{dst: 1, src: 2}, {dst: 2, src: 1}})

	// Three copies must be emitted (temp = one side, then the two
	// assignments), placed before the terminator.
	added := len(b.Instrs) - before
	if added != 3 {
		t.Fatalf("cycle of 2 should emit 3 copies, got %d:\n%s", added, iloc.Print(rt))
	}
	// Simulate the emitted sequence on a register file: it must realize
	// the parallel swap r1,r2 = r2,r1.
	regs := map[int]int64{1: 10, 2: 20}
	for _, in := range b.Instrs[before-1 : len(b.Instrs)-1] {
		if in.Op == iloc.OpMov {
			regs[in.Dst.N] = regs[in.Src[0].N]
		}
	}
	if regs[1] != 20 || regs[2] != 10 {
		t.Fatalf("swap not realized: r1=%d r2=%d\n%s", regs[1], regs[2], iloc.Print(rt))
	}
}

// Empty critical-edge blocks must not survive to allocated code: no
// block may consist of a single jmp reachable from another jmp/br.
func TestJumpThreadingRemovesEmptyBlocks(t *testing.T) {
	res, err := Allocate(context.Background(), iloc.MustParse(fig1Src), Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Routine.Blocks {
		if len(b.Instrs) == 1 && b.Instrs[0].Op == iloc.OpJmp && b != res.Routine.Entry() {
			t.Fatalf("empty jump block %s survived threading\n%s", b.Label, iloc.Print(res.Routine))
		}
	}
	out, err := mustRun(t, res.Routine, interp.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	if out.RetFloat != 10*3.5*2 {
		t.Fatalf("threading broke the program: %g", out.RetFloat)
	}
}

// §5.2: "some spills are profitable." A never-killed value redundantly
// redefined inside a loop but used only once after it has negative spill
// cost — the allocator must spill (rematerialize) it even with registers
// to spare, deleting the in-loop definitions outright.
func TestProfitableSpillDeletesRedundantDefs(t *testing.T) {
	src := `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 5
    ldi r3, 0
    jmp loop
loop:
    add r4, r3, r3
    addi r3, r3, 1
    ldi r2, 5            ; redundant: executed every iteration
    sub r5, r1, r3
    br gt r5, loop, done
done:
    add r6, r3, r2
    add r6, r6, r4
    retr r6
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.Standard(), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	// The in-loop ldi must be gone; at most one ldi 5 executes (as a
	// rematerialization near the use).
	out, err := mustRun(t, res.Routine, interp.Int(10))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10 + 5 + 2*9)
	if out.RetInt != want {
		t.Fatalf("result = %d, want %d", out.RetInt, want)
	}
	loopLdis := 0
	for _, b := range res.Routine.Blocks {
		if b.Depth > 0 || b.Label == "loop" {
			for _, in := range b.Instrs {
				if in.Op == iloc.OpLdi && in.Imm == 5 {
					loopLdis++
				}
			}
		}
	}
	if loopLdis != 0 {
		t.Fatalf("redundant in-loop ldi survived (%d):\n%s", loopLdis, iloc.Print(res.Routine))
	}
	// Dynamic count: ldi 5 executes at most once.
	if n := out.Counts[iloc.OpLdi]; n > 4 {
		t.Fatalf("too many ldi executions: %d\n%s", n, iloc.Print(res.Routine))
	}
}

// Dead definitions (a range never used) are removed the same way.
func TestProfitableSpillRemovesDeadRange(t *testing.T) {
	src := `
routine f()
entry:
    ldi r1, 9            ; dead: negative cost, deleted by spilling
    ldi r2, 2
    retr r2
`
	res, err := Allocate(context.Background(), iloc.MustParse(src), Options{Machine: target.Standard(), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Routine.Blocks {
		for _, in := range b.Instrs {
			if in.Op == iloc.OpLdi && in.Imm == 9 {
				t.Fatalf("dead ldi survived:\n%s", iloc.Print(res.Routine))
			}
		}
	}
	out, err := mustRun(t, res.Routine)
	if err != nil {
		t.Fatal(err)
	}
	if out.RetInt != 2 {
		t.Fatalf("result = %d", out.RetInt)
	}
}
