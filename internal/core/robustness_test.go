package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/target"
	"repro/internal/verify"
)

// runSame executes the input routine and an allocated routine and
// compares their integer results — the end-to-end soundness check every
// degraded allocation must still pass.
func runSame(t *testing.T, input, allocated *iloc.Routine, args ...interp.Value) {
	t.Helper()
	want, err := mustRun(t, input, args...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mustRun(t, allocated, args...)
	if err != nil {
		t.Fatalf("degraded code faults: %v\n%s", err, iloc.Print(allocated))
	}
	if got.RetInt != want.RetInt || got.RetFloat != want.RetFloat {
		t.Fatalf("degraded code computes (%d, %g), input computes (%d, %g)",
			got.RetInt, got.RetFloat, want.RetInt, want.RetFloat)
	}
}

// Non-convergence degrades to spill-everywhere: the result is marked,
// carries the reason, passes the independent verifier, and computes the
// same answer as the virtual-register input.
func TestDegradationOnNonConvergence(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	m := target.WithRegs(3)
	res, err := Allocate(context.Background(), rt, Options{Machine: m, Mode: ModeRemat, MaxIterations: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("expected a degraded result with MaxIterations=1 at K=2")
	}
	if !strings.Contains(res.DegradeReason, "did not converge") {
		t.Fatalf("DegradeReason = %q", res.DegradeReason)
	}
	if err := verify.Check(rt, res.Routine, m, verify.Options{Differential: true}); err != nil {
		t.Fatalf("degraded result rejected by verifier: %v", err)
	}
	runSame(t, rt, res.Routine, interp.Int(4))
}

// A panic seeded into a pipeline pass is contained: with degradation
// disabled it surfaces as a structured *AllocError naming the pass, and
// by default the allocation degrades to a sound spill-everywhere result.
func TestPanicContainment(t *testing.T) {
	PanicHook = func(_, pass string) {
		if pass == "build" {
			panic("injected fault")
		}
	}
	defer func() { PanicHook = nil }()

	rt := iloc.MustParse(fig1Src)
	_, err := Allocate(context.Background(), rt, Options{Machine: target.Standard(), Mode: ModeRemat, DisableDegradation: true})
	if err == nil {
		t.Fatal("expected the injected panic to surface as an error")
	}
	var ae *AllocError
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an *AllocError: %v", err)
	}
	if ae.Pass != "build" || ae.Routine != rt.Name || ae.Iteration != 0 {
		t.Fatalf("AllocError = {Routine:%q Pass:%q Iteration:%d}", ae.Routine, ae.Pass, ae.Iteration)
	}
	if ae.Stack == "" {
		t.Fatal("recovered panic lost its stack trace")
	}
	if !strings.Contains(err.Error(), "injected fault") {
		t.Fatalf("error message lost the panic value: %v", err)
	}

	res, err := Allocate(context.Background(), rt, Options{Machine: target.Standard(), Mode: ModeRemat, Verify: true})
	if err != nil {
		t.Fatalf("degradation did not rescue the poisoned pipeline: %v", err)
	}
	if !res.Degraded || !strings.Contains(res.DegradeReason, "injected fault") {
		t.Fatalf("Degraded=%v reason=%q", res.Degraded, res.DegradeReason)
	}
	runSame(t, rt, res.Routine, interp.Int(4))
}

// The spill-everywhere fallback on its own: every virtual register gets
// a slot, the output verifies against the machine it targets (including
// a machine with the minimum two colors per bank), and it executes
// identically to the input.
func TestSpillEverywhereDirect(t *testing.T) {
	for _, m := range []*target.Machine{target.Standard(), target.WithRegs(3)} {
		rt := iloc.MustParse(fig1Src)
		res, err := spillEverywhere(rt, Options{Machine: m, Mode: ModeRemat}.withDefaults())
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := verify.Check(rt, res.Routine, m, verify.Options{Differential: true}); err != nil {
			t.Fatalf("%s: %v\n%s", m.Name, err, iloc.Print(res.Routine))
		}
		runSame(t, rt, res.Routine, interp.Int(4))
	}
}

// A fault in the final pass — rewrite, which produces the allocated
// code itself — still degrades: the pipeline never yields output, and
// the fallback's result is the only sound one.
func TestFaultInRewriteDegrades(t *testing.T) {
	PanicHook = func(_, pass string) {
		if pass == "rewrite" {
			panic("rewrite corrupted")
		}
	}
	defer func() { PanicHook = nil }()
	rt := iloc.MustParse(fig1Src)
	res, err := Allocate(context.Background(), rt, Options{Machine: target.Standard(), Mode: ModeRemat, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("expected degradation when rewrite cannot complete")
	}
	runSame(t, rt, res.Routine, interp.Int(4))
}
