package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/iloc"
	"repro/internal/telemetry"
)

// This file turns Figure 2's allocator loop into an explicit pipeline:
// each phase — build, the two coalescing rounds, spill costs, simplify,
// biased select, spill insertion — is a Pass with a uniform signature,
// and a small runner executes them in order, timing every pass and
// recording what it did (graph size, coalesces, spills, splits) into the
// Result. The paper presents the allocator exactly this way ("the
// allocator iterates the sequence renumber, build, coalesce, ...", §4),
// and keeping the stages first-class lets the experiment drivers report
// where allocation time goes without re-instrumenting the loop.

// PassStat records one execution of one pipeline pass within one
// iteration of the allocator loop. Fields that do not apply to a pass
// (e.g. coalesce counts during costs) are left zero.
type PassStat struct {
	Name string
	Time time.Duration

	// Nodes and Edges are the interference graph size (both classes
	// summed) after a graph-touching pass: live-range roots present in
	// the code, and edges between them.
	Nodes int
	Edges int

	// Coalesced counts copies removed by a coalescing pass, Splits the
	// split copies renumber inserted, Spilled the live ranges given
	// spill code, and Remat the subset handled by rematerialization
	// rather than store/reload.
	Coalesced int
	Splits    int
	Spilled   int
	Remat     int
}

// roundCtx carries the state that flows between the passes of one round:
// the control-flow analyses the early passes produce and the uncolored
// ranges select hands to spill insertion.
type roundCtx struct {
	tree  *dom.Tree
	loops []*cfg.Loop

	spilled  [iloc.NumClasses][]int
	anySpill bool

	stop bool // end this round early and go around the loop again
	done bool // allocation complete: code rewritten to physical colors
}

// A Pass is one named stage of the allocator pipeline. All passes share
// one signature: they mutate the allocator's working routine and
// per-class state, report what they did through the stat, and steer the
// round through the context (stop/done).
type Pass struct {
	// name identifies the pass in stats output.
	name string
	// metric is the pass's timing-histogram name ("core.pass.<name>"),
	// precomputed by init so the hot loop never builds strings.
	metric string
	// times selects the Table 2 phase row this pass's wall time accrues
	// to, keeping the coarse PhaseTimes breakdown the experiments print.
	times func(*PhaseTimes) *time.Duration
	// when gates the pass; nil means always run. Skipped passes do not
	// appear in the iteration's stats.
	when func(a *allocator, ctx *roundCtx) bool
	// run does the work.
	run func(a *allocator, ctx *roundCtx, st *IterationStats, ps *PassStat) error
}

// Name returns the pass's name as it appears in stats output.
func (p *Pass) Name() string { return p.name }

// allocPipeline is Figure 2's loop body in order. One trip through it is
// one iteration of the spill/color loop; the runner stops early when a
// pass sets stop (profitable spills found) or when rewrite marks the
// allocation done.
var allocPipeline = []*Pass{
	passCFA,
	passRenumber,
	passBuild,
	passCoalesceAggressive,
	passCoalesceConservative,
	passChaitinTags,
	passCosts,
	passProfitableSpills,
	passSimplify,
	passSelect,
	passRewrite,
	passSpillInsert,
}

func init() {
	for _, p := range allocPipeline {
		p.metric = "core.pass." + p.name
	}
}

// PassNames lists the pipeline's passes in execution order (conditional
// passes included).
func PassNames() []string {
	names := make([]string, len(allocPipeline))
	for i, p := range allocPipeline {
		names[i] = p.name
	}
	return names
}

var passCFA = &Pass{
	name:  "cfa",
	times: func(t *PhaseTimes) *time.Duration { return &t.CFA },
	run: func(a *allocator, ctx *roundCtx, _ *IterationStats, _ *PassStat) error {
		if err := cfg.Build(a.rt); err != nil {
			return err
		}
		if _, err := cfg.SplitCriticalEdges(a.rt); err != nil {
			return err
		}
		tree, loops, err := cfg.Analyze(a.rt)
		if err != nil {
			return err
		}
		ctx.tree, ctx.loops = tree, loops
		return nil
	},
}

var passRenumber = &Pass{
	name:  "renumber",
	times: func(t *PhaseTimes) *time.Duration { return &t.Renumber },
	run: func(a *allocator, ctx *roundCtx, st *IterationStats, ps *PassStat) error {
		splits, err := a.renumber(ctx.tree, ctx.loops)
		if err != nil {
			return err
		}
		st.Splits = splits
		ps.Splits = splits
		return nil
	},
}

var passBuild = &Pass{
	name:  "build",
	times: func(t *PhaseTimes) *time.Duration { return &t.Build },
	run: func(a *allocator, _ *roundCtx, _ *IterationStats, ps *PassStat) error {
		for _, cs := range a.classes {
			a.buildGraph(cs)
		}
		a.graphStats(ps)
		return nil
	},
}

var passCoalesceAggressive = &Pass{
	name:  "coalesce",
	times: func(t *PhaseTimes) *time.Duration { return &t.Build },
	run: func(a *allocator, _ *roundCtx, st *IterationStats, ps *PassStat) error {
		// Unrestricted coalescing of ordinary copies to a fixpoint,
		// rebuilding the graph between passes (§4.2's first round). The
		// graph for this round was just built by the build pass.
		for _, cs := range a.classes {
			for {
				m := a.coalescePass(cs, false)
				ps.Coalesced += m
				if m == 0 {
					break
				}
				a.buildGraph(cs)
			}
		}
		st.Coalesced += ps.Coalesced
		a.graphStats(ps)
		return nil
	},
}

var passCoalesceConservative = &Pass{
	name:  "coalesce-cons",
	times: func(t *PhaseTimes) *time.Duration { return &t.Build },
	when: func(a *allocator, _ *roundCtx) bool {
		return a.opts.Mode == ModeRemat && !a.opts.DisableConservativeCoalescing
	},
	run: func(a *allocator, _ *roundCtx, st *IterationStats, ps *PassStat) error {
		// Conservative coalescing of split copies (§4.2's second round):
		// a split merges only when the combined range provably still
		// simplifies.
		for _, cs := range a.classes {
			for {
				a.buildGraph(cs)
				m := a.coalescePass(cs, true)
				ps.Coalesced += m
				if m == 0 {
					break
				}
			}
		}
		st.Coalesced += ps.Coalesced
		a.graphStats(ps)
		return nil
	},
}

var passChaitinTags = &Pass{
	name:  "tags",
	times: func(t *PhaseTimes) *time.Duration { return &t.Build },
	when:  func(a *allocator, _ *roundCtx) bool { return a.opts.Mode == ModeChaitin },
	run: func(a *allocator, _ *roundCtx, _ *IterationStats, _ *PassStat) error {
		// Chaitin's whole-range rule: a live range rematerializes only
		// if all of its remaining definitions are the same never-killed
		// instruction. Evaluated after coalescing so deleted copies do
		// not count as definitions.
		for _, cs := range a.classes {
			a.computeChaitinTags(cs)
		}
		return nil
	},
}

var passCosts = &Pass{
	name:  "costs",
	times: func(t *PhaseTimes) *time.Duration { return &t.Costs },
	run: func(a *allocator, _ *roundCtx, _ *IterationStats, _ *PassStat) error {
		for _, cs := range a.classes {
			a.computeCosts(cs)
		}
		return nil
	},
}

var passProfitableSpills = &Pass{
	name:  "spill-profitable",
	times: func(t *PhaseTimes) *time.Duration { return &t.Spill },
	run: func(a *allocator, ctx *roundCtx, st *IterationStats, ps *PassStat) error {
		// Profitable spills (§5.2: "some spills are profitable"): a
		// rematerializable range whose deleted definitions outweigh its
		// per-use recomputation has negative cost — spilling it removes
		// instructions outright, registers or no registers. Handle these
		// before coloring and go around the loop again.
		for ci, cs := range a.classes {
			var neg []int
			for v := 1; v < a.rt.NumRegs(cs.c); v++ {
				if cs.inCode[v] && cs.find(v) == v && !cs.mustNot[v] && cs.cost[v] < 0 {
					neg = append(neg, v)
				}
			}
			if len(neg) > 0 {
				a.resetSlots()
				spilled, remat := a.insertSpills(cs, neg)
				st.Spilled[ci] += spilled
				st.Remat[ci] += remat
				ps.Spilled += spilled
				ps.Remat += remat
				ctx.stop = true
			}
		}
		return nil
	},
}

var passSimplify = &Pass{
	name:  "simplify",
	times: func(t *PhaseTimes) *time.Duration { return &t.Color },
	run: func(a *allocator, _ *roundCtx, _ *IterationStats, _ *PassStat) error {
		for _, cs := range a.classes {
			a.simplify(cs)
		}
		return nil
	},
}

var passSelect = &Pass{
	name:  "select",
	times: func(t *PhaseTimes) *time.Duration { return &t.Color },
	run: func(a *allocator, ctx *roundCtx, st *IterationStats, ps *PassStat) error {
		for ci, cs := range a.classes {
			ctx.spilled[ci] = a.selectColors(cs)
			st.Spilled[ci] = len(ctx.spilled[ci])
			ps.Spilled += len(ctx.spilled[ci])
			if len(ctx.spilled[ci]) > 0 {
				ctx.anySpill = true
			}
		}
		return nil
	},
}

var passRewrite = &Pass{
	name:  "rewrite",
	times: func(t *PhaseTimes) *time.Duration { return &t.Color },
	when:  func(_ *allocator, ctx *roundCtx) bool { return !ctx.anySpill },
	run: func(a *allocator, ctx *roundCtx, _ *IterationStats, _ *PassStat) error {
		if err := a.rewriteColors(); err != nil {
			return err
		}
		if err := a.threadJumps(); err != nil {
			return err
		}
		ctx.done = true
		return nil
	},
}

var passSpillInsert = &Pass{
	name:  "spill",
	times: func(t *PhaseTimes) *time.Duration { return &t.Spill },
	when:  func(_ *allocator, ctx *roundCtx) bool { return ctx.anySpill },
	run: func(a *allocator, ctx *roundCtx, st *IterationStats, ps *PassStat) error {
		a.resetSlots()
		for ci, cs := range a.classes {
			if len(ctx.spilled[ci]) > 0 {
				spilled, remat := a.insertSpills(cs, ctx.spilled[ci])
				st.Remat[ci] += remat
				ps.Spilled += spilled
				ps.Remat += remat
			}
		}
		return nil
	},
}

// round drives one trip through the pipeline. done is true when select
// colored every live range and the code has been rewritten to physical
// colors.
//
// Telemetry: each executed pass runs inside a telemetry span — the
// span's clock is the PassStat timing source, so the trace, the metrics
// histograms and the -stats table can never disagree — and the whole
// round is wrapped in an iteration span. With no sink installed the
// spans are zero-allocation no-ops that still read the clock.
func (a *allocator) round() (IterationStats, bool, error) {
	var st IterationStats
	ctx := &roundCtx{}
	tel := a.opts.Telemetry
	iterSpan := tel.StartSpan(telemetry.CatIteration, "iteration")
	iterSpan.Arg("iteration", int64(a.roundNo))
	for _, p := range allocPipeline {
		if err := a.ctxErr(); err != nil {
			iterSpan.End()
			return st, false, err
		}
		if p.when != nil && !p.when(a, ctx) {
			continue
		}
		ps := PassStat{Name: p.name}
		sp := tel.StartSpan(telemetry.CatPass, p.name)
		err := a.runPass(p, ctx, &st, &ps)
		ps.Time = endPassSpan(&sp, &ps)
		if tel.Enabled() {
			tel.Observe(p.metric, ps.Time.Nanoseconds())
		}
		*p.times(&st.Times) += ps.Time
		st.Passes = append(st.Passes, ps)
		if err != nil {
			iterSpan.End()
			return st, false, err
		}
		if ctx.stop || ctx.done {
			break
		}
	}
	iterSpan.End()
	return st, ctx.done, nil
}

// endPassSpan annotates the span with the pass's recorded effect (only
// the fields the pass actually touched, keeping traces compact) and
// ends it, returning the measured wall time. When no tracer is
// attached every Arg call is a no-op and only the clock is read.
func endPassSpan(sp *telemetry.Span, ps *PassStat) time.Duration {
	if sp.Active() {
		if ps.Nodes != 0 {
			sp.Arg("nodes", int64(ps.Nodes))
		}
		if ps.Edges != 0 {
			sp.Arg("edges", int64(ps.Edges))
		}
		if ps.Coalesced != 0 {
			sp.Arg("coalesced", int64(ps.Coalesced))
		}
		if ps.Splits != 0 {
			sp.Arg("splits", int64(ps.Splits))
		}
		if ps.Spilled != 0 {
			sp.Arg("spilled", int64(ps.Spilled))
		}
		if ps.Remat != 0 {
			sp.Arg("remat", int64(ps.Remat))
		}
	}
	return sp.End()
}

// ctxErr reports the allocation's context state as a structured
// *AllocError (pass "context"), or nil while the context is live. The
// pipeline consults it between passes and between iterations — the
// boundaries where the allocator can be abandoned without leaving
// half-mutated state, and the only places it can run for long.
func (a *allocator) ctxErr() error {
	if a.ctx == nil {
		return nil
	}
	if err := a.ctx.Err(); err != nil {
		return &AllocError{Routine: a.rt.Name, Pass: "context", Iteration: a.roundNo, Err: err}
	}
	return nil
}

// runPass executes one pipeline pass with panic containment: a panic
// anywhere inside the pass — an allocator bug, a violated invariant, or
// the PanicHook fault injector — is recovered into a structured
// *AllocError naming the routine, pass and iteration, so one poisoned
// routine fails as an error value rather than unwinding the caller (or
// a whole driver batch). Ordinary pass errors get the same wrapping for
// a uniform error taxonomy.
func (a *allocator) runPass(p *Pass, ctx *roundCtx, st *IterationStats, ps *PassStat) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recovered(a.rt.Name, p.name, a.roundNo, r)
		}
	}()
	if hook := PanicHook; hook != nil {
		hook(a.rt.Name, p.name)
	}
	if err := p.run(a, ctx, st, ps); err != nil {
		return &AllocError{Routine: a.rt.Name, Pass: p.name, Iteration: a.roundNo, Err: err}
	}
	return nil
}

// graphStats records the current interference graph size (both classes)
// into the stat: live-range roots present in the code, and edges.
func (a *allocator) graphStats(ps *PassStat) {
	ps.Nodes, ps.Edges = 0, 0
	for _, cs := range a.classes {
		if cs == nil || cs.graph == nil {
			continue
		}
		for v := 1; v < len(cs.inCode); v++ {
			if cs.inCode[v] && cs.find(v) == v {
				ps.Nodes++
			}
		}
		ps.Edges += cs.graph.NumEdges()
	}
}

// FormatStats renders a Result's per-pass, per-iteration statistics as a
// table: one row per executed pass, with wall time, the interference
// graph size the pass left behind, and what it changed. cmd/ralloc
// prints this under -stats; the experiment drivers reuse it when
// reporting where allocation time goes.
func FormatStats(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s  %-16s %12s %7s %8s %6s %7s %7s %6s\n",
		"iter", "pass", "time", "nodes", "edges", "coal", "splits", "spilled", "remat")
	num := func(n int) string {
		if n == 0 {
			return "."
		}
		return fmt.Sprintf("%d", n)
	}
	for i, it := range res.Iterations {
		for _, ps := range it.Passes {
			fmt.Fprintf(&b, "%4d  %-16s %12s %7s %8s %6s %7s %7s %6s\n",
				i, ps.Name, ps.Time.Round(100*time.Nanosecond),
				num(ps.Nodes), num(ps.Edges), num(ps.Coalesced),
				num(ps.Splits), num(ps.Spilled), num(ps.Remat))
		}
	}
	spilled, remat := 0, 0
	for _, it := range res.Iterations {
		for _, n := range it.Spilled {
			spilled += n
		}
		for _, n := range it.Remat {
			remat += n
		}
	}
	fmt.Fprintf(&b, "%d iteration(s), %d range(s) spilled (%d rematerialized), total %v\n",
		len(res.Iterations), spilled, remat, res.TotalTimes().Total())
	return b.String()
}
