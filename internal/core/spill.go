package core

import (
	"fmt"

	"repro/internal/iloc"
)

// errUncolored reports a register that survived to rewrite without a
// color — an internal invariant violation.
func errUncolored(a *allocator, in *iloc.Instr) error {
	return fmt.Errorf("core: %s: uncolored register in %q", a.rt.Name, in)
}

// insertSpills converts each uncolored live range into tiny ranges. A ⊥
// range gets Chaitin's heavyweight treatment — a store after every
// definition, a reload before every use. A never-killed range is
// rematerialized: its tag instruction is issued into a fresh register
// before each use and its definitions are simply deleted, since the value
// need never live in memory (§3.2, spill code). It returns the number of
// ranges given spill code and the subset that rematerialized, for the
// pipeline's stats.
func (a *allocator) insertSpills(cs *classState, spilled []int) (n, remat int) {
	c := cs.c
	isSpilled := make(map[int]bool, len(spilled))
	for _, v := range spilled {
		isSpilled[v] = true
		n++
		if cs.tags[v].Rematerializable() {
			remat++
		}
	}
	a.res.SpilledRanges += n
	a.res.RematSpills += remat

	for _, b := range a.rt.Blocks {
		out := make([]*iloc.Instr, 0, len(b.Instrs)+8)
		for _, in := range b.Instrs {
			d := in.Def()
			defSpilled := d.Valid() && d.Class == c && d.N != 0 && isSpilled[d.N]

			// A definition of a rematerializable spilled range vanishes:
			// the value is recomputed at each use instead. Its defining
			// instructions are never-killed instructions or copies, so
			// dropping them loses no side effect — and drops their
			// operand reloads with them.
			if defSpilled && cs.tagOf(d.N).Rematerializable() {
				continue
			}

			// Reload (or rematerialize) each spilled use into a fresh
			// temporary; one temporary per range per instruction.
			replaced := make(map[int]iloc.Reg)
			uses := in.Uses()
			for ui := range uses {
				u := uses[ui]
				if u.Class != c || u.N == 0 || !isSpilled[u.N] {
					continue
				}
				t, ok := replaced[u.N]
				if !ok {
					t = a.rt.NewReg(c)
					replaced[u.N] = t
					tag := cs.tagOf(u.N)
					if tag.Rematerializable() {
						ri := tag.Instr.Clone()
						ri.Dst = t
						ri.IsSpill = true
						ri.IsSplit = false
						out = append(out, ri)
					} else {
						out = append(out, &iloc.Instr{
							Op:  reloadOp(c),
							Dst: t, Src: [2]iloc.Reg{iloc.FP, iloc.NoReg},
							Imm: a.slotFor(c, u.N), IsSpill: true,
						})
					}
				}
				if in.Op == iloc.OpPhi {
					in.Phi.Args[ui] = t
				} else {
					in.Src[ui] = t
				}
			}

			if defSpilled { // ⊥ range: redirect the def and store it
				t := a.rt.NewReg(c)
				in.Dst = t
				out = append(out, in)
				st := &iloc.Instr{
					Op:  storeOp(c),
					Dst: iloc.NoReg,
					Src: [2]iloc.Reg{t, iloc.FP},
					Imm: a.slotFor(c, d.N), IsSpill: true,
				}
				out = append(out, st)
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	return n, remat
}

func reloadOp(c iloc.Class) iloc.Op {
	if c == iloc.ClassInt {
		return iloc.OpLoadai
	}
	return iloc.OpFloadai
}

func storeOp(c iloc.Class) iloc.Op {
	if c == iloc.ClassInt {
		return iloc.OpStoreai
	}
	return iloc.OpFstoreai
}
