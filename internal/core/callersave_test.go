package core

import (
	"context"
	"testing"

	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/liveness"
	"repro/internal/target"
)

// checkNoCallerSaveAcrossCalls walks the allocated code backward the way
// buildGraph does and asserts that no register in the caller-save band
// (colors 1..CallerSave) is live across any call. This pins select's
// boundary: ranges marked acrossCall start their color scan at
// CallerSave+1, so a caller-save color surviving a call would mean the
// callee's clobber corrupts it.
func checkNoCallerSaveAcrossCalls(t *testing.T, rt *iloc.Routine, m *target.Machine) {
	t.Helper()
	calls := 0
	for c := iloc.Class(0); c < iloc.NumClasses; c++ {
		live := liveness.Compute(rt, c)
		for _, b := range rt.Blocks {
			lv := live.LiveOut[b.Index].Copy()
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if in.Op.IsCall() {
					calls++
					lv.ForEach(func(r int) {
						if r >= 1 && r <= m.CallerSave {
							t.Errorf("machine %s: caller-save r%d (class %d) live across %q",
								m, r, c, in)
						}
					})
				}
				if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
					lv.Remove(d.N)
				}
				for _, u := range in.Uses() {
					if u.Class == c && u.N != 0 {
						lv.Add(u.N)
					}
				}
			}
		}
	}
	if calls == 0 {
		t.Fatal("test routine contains no calls; nothing verified")
	}
}

// Two values live across a call, allocated on the standard machine and on
// the 3-register one. On standard both fit above the caller-save band; on
// WithRegs(3) only one callee-save color exists (CallerSave=1, k=2), so
// the other range must spill rather than take color 1. Either way the
// static check and the poisoning interpreter must both be satisfied.
func TestCallerSaveBoundary(t *testing.T) {
	callerSrc := `
routine main(r1)
entry:
    getparam r1, 0
    ldi r2, 10           ; live across the call
    ldi r3, 20           ; live across the call
    setarg r1, 0
    call square
    getret r4
    add r5, r2, r3
    add r4, r4, r5
    retr r4
`
	for _, m := range []*target.Machine{target.Standard(), target.WithRegs(3)} {
		for _, mode := range []Mode{ModeChaitin, ModeRemat} {
			res, err := Allocate(context.Background(), iloc.MustParse(callerSrc), Options{Machine: m, Mode: mode})
			if err != nil {
				t.Fatalf("machine %s mode %v: %v", m, mode, err)
			}
			checkNoCallerSaveAcrossCalls(t, res.Routine, m)

			callee, err := Allocate(context.Background(), iloc.MustParse(squareSrc), Options{Machine: m, Mode: mode})
			if err != nil {
				t.Fatalf("callee on %s: %v", m, err)
			}
			e, err := interp.New(res.Routine, interp.Config{Routines: []*iloc.Routine{callee.Routine}})
			if err != nil {
				t.Fatal(err)
			}
			out, err := e.Run(interp.Int(6))
			if err != nil {
				t.Fatalf("machine %s mode %v: run: %v\n%s", m, mode, err, iloc.Print(res.Routine))
			}
			if out.RetInt != 36+30 {
				t.Fatalf("machine %s mode %v: result = %d, want 66", m, mode, out.RetInt)
			}
		}
	}
}

// On the tiny machine the sole callee-save color is still preferred over
// spilling: a single range across a call must be colored (with color
// CallerSave+1 = 2), not spilled, and the select stats must show zero
// spills for it.
func TestCallerSaveBoundaryTinyMachineColors(t *testing.T) {
	callerSrc := `
routine main(r1)
entry:
    getparam r1, 0
    ldi r2, 10           ; the only value live across the call
    setarg r1, 0
    call square
    getret r3
    add r3, r3, r2
    retr r3
`
	m := target.WithRegs(3)
	res, err := Allocate(context.Background(), iloc.MustParse(callerSrc), Options{Machine: m, Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledRanges != 0 {
		t.Fatalf("spilled %d ranges; the callee-save color should have sufficed", res.SpilledRanges)
	}
	checkNoCallerSaveAcrossCalls(t, res.Routine, m)
}
