// Package core implements the paper's register allocator: the optimistic
// graph-coloring allocator of Briggs, Cooper, Kennedy and Torczon,
// extended with the rematerialization machinery of the paper — SSA-based
// renumbering with tag propagation, split insertion, conservative
// coalescing, biased coloring with lookahead, and spill code that
// recomputes never-killed values instead of storing and reloading them.
//
// The same code also runs in "Chaitin mode", which reproduces the
// baseline of Table 1: live ranges are formed by unioning every value
// reaching each φ-node (no splits), and a live range is rematerializable
// only when all of its definitions are identical never-killed
// instructions.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/disjoint"
	"repro/internal/ig"
	"repro/internal/iloc"
	"repro/internal/remat"
	"repro/internal/target"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// Mode selects the rematerialization strategy.
type Mode int

// Allocator modes.
const (
	// ModeChaitin is the baseline: Chaitin's limited rematerialization
	// (whole live ranges, no splitting). The "Optimistic" column of
	// Table 1.
	ModeChaitin Mode = iota
	// ModeRemat is the paper's contribution: per-value tags, splits,
	// conservative coalescing and biased coloring. The
	// "Rematerialization" column of Table 1.
	ModeRemat
)

func (m Mode) String() string {
	switch m {
	case ModeChaitin:
		return "chaitin"
	case ModeRemat:
		return "remat"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Options configures an allocation.
type Options struct {
	Machine *target.Machine
	Mode    Mode

	// Strategy selects the allocation strategy by registered name,
	// optionally parameterized ("remat", "chaitin", "spill-everywhere",
	// "ssa-spill", "remat:split=all-loops,no-bias"; see strategy.go).
	// When set it wins over Mode and the strategy's parameters shape the
	// fields below; when empty it is derived from Mode, so existing
	// Mode-based callers behave exactly as before. An out-of-range Mode
	// derives an unregistered name and Allocate reports it as an error.
	Strategy string

	// DisableConservativeCoalescing keeps the splits renumber inserted
	// (ablation switch; normally conservative coalescing runs in
	// ModeRemat).
	DisableConservativeCoalescing bool
	// DisableBiasedColoring turns off partner-color preference in select.
	DisableBiasedColoring bool
	// DisableLookahead turns off the one-level partner lookahead.
	DisableLookahead bool
	// Split selects one of §6's experimental live-range splitting
	// schemes (ModeRemat only); SplitNone is the paper's main
	// configuration.
	Split SplitScheme
	// Metric selects the spill-candidate metric. The paper uses
	// Chaitin's cost/degree ("the metric for picking spill candidates is
	// critical", §2); the alternatives come from the spill-minimization
	// literature it cites (Bernstein et al.).
	Metric SpillMetric
	// MaxIterations bounds the spill/color loop (default 32).
	MaxIterations int

	// Verify runs the allocator-independent checker (internal/verify)
	// over the finished allocation — bounds, use-before-def liveness,
	// caller-save discipline, spill-slot soundness, rematerialization
	// tags, and an interpreter differential where possible. A rejected
	// allocation is treated like any other allocator failure: it
	// degrades (below) or errors.
	Verify bool
	// DisableDegradation turns off the spill-everywhere fallback. By
	// default a failed allocation — non-convergence, a contained panic,
	// or a verifier rejection — degrades to a guaranteed-terminating
	// spill-everywhere allocation with Result.Degraded set; with this
	// flag the failure surfaces as an *AllocError instead.
	DisableDegradation bool

	// Telemetry, when non-nil, receives metrics (core.* counters and
	// per-pass timing histograms) and trace events (one span per
	// allocation, iteration and pipeline pass). Telemetry never changes
	// the allocation — it is excluded from the driver cache's option
	// canonicalization — and a nil sink costs nothing on the hot path.
	Telemetry *telemetry.Sink
}

func (o Options) withDefaults() Options {
	if o.Machine == nil {
		o.Machine = target.Standard()
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 32
	}
	if o.Strategy == "" {
		o.Strategy = o.Mode.String()
	}
	return o
}

// Canonical returns the options as Allocate uses them, with defaults
// applied (nil Machine becomes the standard machine, zero MaxIterations
// the default bound, an empty Strategy derived from Mode), the strategy
// spec normalized and its parameters folded onto the option fields, and
// the non-semantic Telemetry sink cleared. Two Options values with
// equal Canonical semantic fields configure identical allocations — the
// property the driver's content-addressed result cache keys on.
func (o Options) Canonical() Options {
	c := o.withDefaults()
	if strat, err := LookupStrategy(c.Strategy); err == nil {
		strat.applyTo(&c)
		c.Strategy = strat.specFor(c)
	}
	c.Telemetry = nil
	return c
}

// PhaseTimes records wall-clock time per allocator phase for one
// iteration, mirroring the rows of Table 2.
type PhaseTimes struct {
	CFA      time.Duration // control-flow analysis: CFG, dominators, loops
	Renumber time.Duration // SSA, tags, unions, splits
	Build    time.Duration // the build–coalesce loop
	Costs    time.Duration // spill cost estimation
	Color    time.Duration // simplify + select
	Spill    time.Duration // spill code insertion
}

// Total sums the phases.
func (p PhaseTimes) Total() time.Duration {
	return p.CFA + p.Renumber + p.Build + p.Costs + p.Color + p.Spill
}

// IterationStats describes one round of the allocator: the coarse phase
// times Table 2 prints, aggregate counts, and the per-pass breakdown the
// pipeline runner records (see pipeline.go).
type IterationStats struct {
	Times     PhaseTimes
	Spilled   [iloc.NumClasses]int // live ranges spilled this round
	Remat     [iloc.NumClasses]int // subset of Spilled handled by rematerialization
	Coalesced int                  // copies removed by coalescing
	Splits    int                  // split copies inserted by renumber
	// Passes records each pipeline pass this round actually ran, in
	// execution order, with its wall time and effect.
	Passes []PassStat
}

// Result is a finished allocation.
type Result struct {
	// Routine is the allocated code: register numbers are physical
	// colors in [1, K], fp is register 0, and spill slots occupy
	// FrameWords words of the frame.
	Routine *iloc.Routine
	// Iterations records per-round statistics; Table 2 prints them.
	Iterations []IterationStats
	// SpilledRanges counts live ranges that received spill code, and
	// RematSpills the subset handled by rematerialization.
	SpilledRanges int
	RematSpills   int
	Mode          Mode
	// Strategy is the canonical spec of the strategy that produced the
	// allocation ("remat", "ssa-spill", "remat:split=all-loops", ...).
	Strategy string
	Machine  *target.Machine
	// Degraded reports that the iterated allocator failed and the
	// routine was re-allocated by the spill-everywhere fallback;
	// DegradeReason records why (the original failure's message).
	Degraded      bool
	DegradeReason string
}

// TotalTimes sums phase times over all iterations.
func (r *Result) TotalTimes() PhaseTimes {
	var t PhaseTimes
	for _, it := range r.Iterations {
		t.CFA += it.Times.CFA
		t.Renumber += it.Times.Renumber
		t.Build += it.Times.Build
		t.Costs += it.Times.Costs
		t.Color += it.Times.Color
		t.Spill += it.Times.Spill
	}
	return t
}

// classState is the allocator's view of one register class.
type classState struct {
	c    iloc.Class
	sets *disjoint.Sets
	tags []remat.Tag
	// graph, cost, mustNot, inCode, stack, colors are rebuilt each round.
	graph    *ig.Graph
	cost     []float64
	mustNot  []bool
	inCode   []bool
	stack    []int
	colors   []int
	partners [][]int
	// acrossCall marks live ranges live across a call site; the calling
	// convention restricts them to callee-save colors (those above
	// Machine.CallerSave).
	acrossCall []bool
}

func (cs *classState) find(n int) int { return cs.sets.Find(n) }

// tagOf returns the tag of the live range containing value n.
func (cs *classState) tagOf(n int) remat.Tag { return cs.tags[cs.find(n)] }

type allocator struct {
	ctx  context.Context
	rt   *iloc.Routine
	opts Options
	res  *Result

	classes   [iloc.NumClasses]*classState
	frameBase int64 // first fp offset free for spill slots
	nextSlot  int
	slots     [iloc.NumClasses]map[int]int64 // live range -> fp offset
	roundNo   int                            // current pipeline round (0-based)
}

// Allocate maps the routine's virtual registers onto the machine. The
// input routine is not modified; the returned Result holds an allocated
// clone.
//
// The context bounds the allocation: it is checked between pipeline
// passes and between iterations of the spill/color loop, the only
// places the allocator can run for long (the loop has no a-priori
// iteration bound). When the context's deadline expires mid-allocation
// the allocator does not hang or return empty-handed — it degrades to
// the guaranteed-terminating spill-everywhere allocation with
// DegradeReason "deadline" (unless Options.DisableDegradation, which
// surfaces the expiry as an error). A cancelled context always returns
// the cancellation error: the caller no longer wants any result.
//
// Allocate is safe for concurrent use, including calls sharing the same
// input routine or Machine: the input is only read (verified and
// cloned), the Machine is never written, all working state lives in the
// per-call allocator, and the package-level pass pipeline is immutable
// after init. The driver package relies on this to allocate whole
// modules in parallel.
func Allocate(ctx context.Context, rt *iloc.Routine, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	strat, err := LookupStrategy(opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	strat.applyTo(&opts)
	opts.Strategy = strat.specFor(opts)
	if err := opts.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := iloc.Verify(rt, false); err != nil {
		return nil, fmt.Errorf("core: input: %w", err)
	}
	tel := opts.Telemetry
	sp := tel.StartSpan(telemetry.CatAlloc, rt.Name)
	res, err := allocateOrDegrade(ctx, rt, opts, strat)
	if sp.Active() {
		sp.StrArg("mode", opts.Mode.String())
		sp.StrArg("strategy", opts.Strategy)
		if res != nil {
			sp.Arg("iterations", int64(len(res.Iterations)))
			sp.Arg("spilled", int64(res.SpilledRanges))
			sp.Arg("remat", int64(res.RematSpills))
			if res.Degraded {
				sp.Arg("degraded", 1)
			}
		}
		if err != nil {
			sp.StrArg("error", err.Error())
		}
	}
	sp.End()
	tel.Count("core.allocations", 1)
	tel.Count("core.allocations.strategy."+opts.Strategy, 1)
	if res != nil {
		tel.Count("core.iterations", int64(len(res.Iterations)))
		tel.Count("core.spilled_ranges", int64(res.SpilledRanges))
		tel.Count("core.remat_spills", int64(res.RematSpills))
	}
	if err != nil {
		tel.Count("core.failures", 1)
	}
	return res, err
}

// allocateOrDegrade is Allocate after validation: the selected
// strategy's pipeline plus the spill-everywhere degradation path.
func allocateOrDegrade(ctx context.Context, rt *iloc.Routine, opts Options, strat *Strategy) (*Result, error) {
	res, err := runStrategy(ctx, rt, opts, strat)
	if err == nil {
		return res, nil
	}
	if errors.Is(err, context.Canceled) {
		// Cancellation means the caller abandoned the request; producing
		// a fallback allocation nobody will read helps no one.
		return nil, err
	}
	if opts.DisableDegradation {
		return nil, err
	}
	// Graceful degradation: the iterated allocator failed (it did not
	// converge, a pass panicked, or the verifier rejected its output).
	// Re-allocate with the spill-everywhere fallback, which terminates
	// on any verifiable input, and record why.
	dres, derr := spillEverywhere(rt, opts)
	if derr != nil {
		return nil, err // fallback failed too; report the original fault
	}
	if opts.Verify {
		if verr := verifyResult(rt, dres, opts); verr != nil {
			return nil, &AllocError{
				Routine: rt.Name, Pass: "verify",
				Err: fmt.Errorf("spill-everywhere fallback rejected (%v) after: %w", verr, err),
			}
		}
	}
	dres.Degraded = true
	dres.Strategy = opts.Strategy
	dres.DegradeReason = err.Error()
	if errors.Is(err, context.DeadlineExceeded) {
		// The fixed reason string is the contract deadline-aware callers
		// (the serving layer, the driver's cache-admission rule) key on.
		dres.DegradeReason = DegradeReasonDeadline
	}
	opts.Telemetry.Count("core.degradations", 1)
	opts.Telemetry.Instant(telemetry.CatDegrade, rt.Name,
		telemetry.Arg{Key: "reason", Str: dres.DegradeReason})
	return dres, nil
}

// runStrategy executes one strategy's pipeline and, when requested,
// the allocator-independent verifier over its output. A verifier
// rejection is an allocation failure like any other — the caller
// degrades or errors — so every strategy's output is held to the same
// standard whatever its construction.
func runStrategy(ctx context.Context, rt *iloc.Routine, opts Options, strat *Strategy) (*Result, error) {
	// The context gate every strategy shares: single-pass constructions
	// (spill-everywhere, ssa-spill) are linear and need no mid-pipeline
	// checks, but an already-ended context must still surface — expired
	// deadlines degrade, cancellations abort.
	if err := ctx.Err(); err != nil {
		return nil, &AllocError{Routine: rt.Name, Pass: "context", Err: err}
	}
	res, err := strat.run(ctx, rt, opts)
	if err != nil {
		return nil, err
	}
	res.Strategy = opts.Strategy
	if opts.Verify {
		if verr := verifyResult(rt, res, opts); verr != nil {
			return nil, &AllocError{
				Routine: rt.Name, Pass: "verify", Iteration: len(res.Iterations) - 1, Err: verr,
			}
		}
	}
	return res, nil
}

// allocate runs the iterated build–color–spill pipeline with panic
// containment: any panic escaping a pass (or the loop scaffolding)
// surfaces as an *AllocError instead of unwinding into the caller.
func allocate(ctx context.Context, rt *iloc.Routine, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, recovered(rt.Name, "", 0, r)
		}
	}()
	a := &allocator{
		ctx:  ctx,
		rt:   rt.Clone(),
		opts: opts,
		res:  &Result{Mode: opts.Mode, Machine: opts.Machine},
	}
	for c := range a.slots {
		a.slots[c] = make(map[int]int64)
	}
	a.frameBase = scanFrameBase(a.rt)

	for iter := 0; iter < opts.MaxIterations; iter++ {
		a.roundNo = iter
		if err := a.ctxErr(); err != nil {
			return nil, err
		}
		stats, done, err := a.round()
		if err != nil {
			return nil, err
		}
		a.res.Iterations = append(a.res.Iterations, stats)
		if !done {
			continue
		}
		a.res.Routine = a.rt
		return a.res, nil
	}
	return nil, &AllocError{
		Routine: rt.Name, Pass: "loop", Iteration: opts.MaxIterations - 1,
		Err: fmt.Errorf("allocation did not converge in %d iterations", opts.MaxIterations),
	}
}

// verifyResult runs the independent post-allocation checker against the
// original input routine.
func verifyResult(input *iloc.Routine, res *Result, opts Options) error {
	return verify.Check(input, res.Routine, opts.Machine,
		verify.Options{Differential: true, Telemetry: opts.Telemetry})
}

// scanFrameBase finds the first fp-relative offset beyond any the routine
// already uses, so spill slots do not collide with its locals.
func scanFrameBase(rt *iloc.Routine) int64 {
	var base int64
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		switch in.Op {
		case iloc.OpLoadai, iloc.OpFloadai:
			if in.Src[0].IsFP() && in.Imm+8 > base {
				base = in.Imm + 8
			}
		case iloc.OpStoreai, iloc.OpFstoreai:
			if in.Src[1].IsFP() && in.Imm+8 > base {
				base = in.Imm + 8
			}
		case iloc.OpAddi, iloc.OpSubi:
			if in.Src[0].IsFP() && in.Imm+8 > base {
				base = in.Imm + 8
			}
		}
	})
	return base
}

// resetSlots clears the per-root spill-slot maps. Live-range names are
// reassigned by renumber each round, so slots must never be shared
// across rounds.
func (a *allocator) resetSlots() {
	for c := range a.slots {
		a.slots[c] = make(map[int]int64)
	}
}

// slotFor returns (allocating if needed) the frame offset of a spilled
// live range.
func (a *allocator) slotFor(c iloc.Class, root int) int64 {
	if off, ok := a.slots[c][root]; ok {
		return off
	}
	off := a.frameBase + int64(a.nextSlot)*8
	a.nextSlot++
	a.slots[c][root] = off
	a.rt.FrameWords = int(a.frameBase/8) + a.nextSlot
	return off
}
