package core

import (
	"math"

	"repro/internal/iloc"
)

// SpillMetric picks the formula simplify minimizes when it must choose a
// spill candidate.
type SpillMetric int

// Spill metrics. Chaitin's cost/degree is the paper's choice; the square
// and area variants are the classic alternatives of Bernstein et al.
// (the paper's reference [1]).
const (
	MetricCostOverDegree        SpillMetric = iota // Chaitin: cost / degree
	MetricCostOverDegreeSquared                    // Bernstein: cost / degree²
	MetricCost                                     // raw estimated spill cost
)

func (m SpillMetric) String() string {
	switch m {
	case MetricCostOverDegree:
		return "cost/degree"
	case MetricCostOverDegreeSquared:
		return "cost/degree²"
	case MetricCost:
		return "cost"
	}
	return "metric(?)"
}

// evaluate computes the metric for a node with the given current degree.
func (m SpillMetric) evaluate(cost float64, deg int) float64 {
	switch m {
	case MetricCostOverDegreeSquared:
		return cost / float64(deg*deg)
	case MetricCost:
		return cost
	default:
		return cost / float64(deg)
	}
}

// simplify orders the nodes for coloring (optimistically, per Briggs et
// al.): nodes of degree < k are removed and pushed; when none remains,
// the node minimizing cost/degree is chosen as a spill candidate — but
// pushed all the same, since select may still find it a color.
func (a *allocator) simplify(cs *classState) {
	k := a.opts.Machine.K(cs.c)
	n := a.rt.NumRegs(cs.c)
	deg := make([]int, n)
	removed := make([]bool, n)
	cs.stack = cs.stack[:0]

	// Ranges live across a call can only take the callee-save colors, so
	// their trivially-colorable threshold is lower.
	kOf := func(v int) int {
		if cs.acrossCall[v] {
			return k - a.opts.Machine.CallerSave
		}
		return k
	}

	remaining := 0
	for v := 1; v < n; v++ {
		if cs.inCode[v] && cs.find(v) == v {
			deg[v] = cs.graph.Degree(v)
			remaining++
		} else {
			removed[v] = true
		}
	}

	remove := func(v int) {
		removed[v] = true
		remaining--
		cs.stack = append(cs.stack, v)
		for _, nb := range cs.graph.Neighbors(v) {
			if !removed[nb] {
				deg[nb]--
			}
		}
	}

	for remaining > 0 {
		progressed := false
		for v := 1; v < n; v++ {
			if !removed[v] && deg[v] < kOf(v) {
				remove(v)
				progressed = true
			}
		}
		if progressed {
			continue
		}
		// All remaining nodes have degree >= k: pick the cheapest spill
		// candidate by Chaitin's cost/degree metric, avoiding spill temps
		// whenever possible.
		best, bestMetric := -1, math.Inf(1)
		bestAny := -1
		for v := 1; v < n; v++ {
			if removed[v] {
				continue
			}
			if bestAny == -1 {
				bestAny = v
			}
			metric := a.opts.Metric.evaluate(cs.cost[v], deg[v])
			if !cs.mustNot[v] && metric < bestMetric {
				best, bestMetric = v, metric
			}
		}
		if best == -1 {
			best = bestAny // only spill temps left; push one anyway
		}
		remove(best)
	}
}

// selectColors pops the simplify stack and assigns colors 1..k. Biased
// coloring tries a partner's color first; the one-level lookahead prefers
// a color that remains available to an uncolored partner (§4.3). It
// returns the live ranges left uncolored.
func (a *allocator) selectColors(cs *classState) (spilled []int) {
	k := a.opts.Machine.K(cs.c)
	n := a.rt.NumRegs(cs.c)
	cs.colors = make([]int, n)
	a.findPartners(cs)

	forbidden := make([]bool, k+1)
	avail := func(v int) []bool {
		f := make([]bool, k+1)
		for _, nb := range cs.graph.Neighbors(v) {
			if col := cs.colors[nb]; col != 0 {
				f[col] = true
			}
		}
		return f
	}

	for i := len(cs.stack) - 1; i >= 0; i-- {
		v := cs.stack[i]
		// Caller-save colors are forbidden for ranges live across a call.
		lo := 1
		if cs.acrossCall[v] {
			lo = a.opts.Machine.CallerSave + 1
		}
		for c := 1; c <= k; c++ {
			forbidden[c] = c < lo
		}
		free := k - (lo - 1)
		for _, nb := range cs.graph.Neighbors(v) {
			if col := cs.colors[nb]; col != 0 && !forbidden[col] {
				forbidden[col] = true
				free--
			}
		}
		if free <= 0 {
			spilled = append(spilled, v)
			continue
		}

		choice := 0
		if !a.opts.DisableBiasedColoring {
			// Bias: a color already given to a partner.
			for _, p := range cs.partners[v] {
				if col := cs.colors[p]; col != 0 && !forbidden[col] {
					choice = col
					break
				}
			}
			// Lookahead: prefer a color an uncolored partner could still
			// take, so the later biased pick can match it.
			if choice == 0 && !a.opts.DisableLookahead {
				for _, p := range cs.partners[v] {
					if cs.colors[p] != 0 {
						continue
					}
					pf := avail(p)
					for c := lo; c <= k; c++ {
						if !forbidden[c] && !pf[c] {
							choice = c
							break
						}
					}
					if choice != 0 {
						break
					}
				}
			}
		}
		if choice == 0 {
			for c := lo; c <= k; c++ {
				if !forbidden[c] {
					choice = c
					break
				}
			}
		}
		cs.colors[v] = choice
	}

	// Safety net: no two interfering ranges may share a color.
	for v := 1; v < n; v++ {
		if cs.colors[v] == 0 {
			continue
		}
		for _, nb := range cs.graph.Neighbors(v) {
			if cs.colors[nb] == cs.colors[v] {
				panic("core: coloring invariant violated")
			}
		}
	}
	return spilled
}

// rewriteColors replaces every live-range name with its physical color
// and marks the routine allocated. Copies whose two ends landed on the
// same color — the goal of biased coloring — become no-ops and are
// deleted here, eliminating the run-time cost of the remaining splits
// (§3.4: "the copy should be eliminated whenever possible").
func (a *allocator) rewriteColors() error {
	for _, b := range a.rt.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op.IsCopy() && !in.Src[0].IsFP() {
				cs := a.classes[in.Dst.Class]
				if cs.colors[cs.find(in.Dst.N)] == cs.colors[cs.find(in.Src[0].N)] {
					continue // same register: dead copy
				}
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	for _, cs := range a.classes {
		c := cs.c
		var err error
		a.rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
			for i := 0; i < in.Op.NSrc(); i++ {
				if in.Src[i].Class == c && in.Src[i].N != 0 {
					in.Src[i].N = cs.colors[cs.find(in.Src[i].N)]
					if in.Src[i].N == 0 && err == nil {
						err = errUncolored(a, in)
					}
				}
			}
			if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
				in.Dst.N = cs.colors[cs.find(in.Dst.N)]
				if in.Dst.N == 0 && err == nil {
					err = errUncolored(a, in)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	a.rt.Allocated = true
	a.rt.NextReg[0] = a.opts.Machine.Regs[0]
	a.rt.NextReg[1] = a.opts.Machine.Regs[1]
	for c := range a.rt.CallerSave {
		a.rt.CallerSave[c] = a.opts.Machine.CallerSave
	}
	return nil
}
