package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/target"
	"repro/internal/telemetry"
	"repro/internal/verify"
)

// An already-expired deadline cannot hang the allocator: it degrades to
// the spill-everywhere fallback with the fixed reason "deadline", and
// the degraded code is still verified and computes the right answer.
func TestDeadlineDegradesToSpillEverywhere(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	m := target.WithRegs(4)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	reg := telemetry.NewRegistry()
	res, err := Allocate(ctx, rt, Options{
		Machine: m, Mode: ModeRemat, Verify: true,
		Telemetry: &telemetry.Sink{Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("expired deadline did not degrade")
	}
	if res.DegradeReason != DegradeReasonDeadline {
		t.Fatalf("DegradeReason = %q, want %q", res.DegradeReason, DegradeReasonDeadline)
	}
	if err := verify.Check(rt, res.Routine, m, verify.Options{Differential: true}); err != nil {
		t.Fatalf("deadline-degraded result rejected by verifier: %v", err)
	}
	runSame(t, rt, res.Routine, interp.Int(4))
	if n := reg.Counter("core.degradations").Value(); n != 1 {
		t.Fatalf("core.degradations = %d, want 1", n)
	}
}

// A deadline that expires mid-pipeline (stalled inside a pass via the
// fault-injection hook) is noticed at the next pass boundary and
// degrades with reason "deadline" — the allocator never runs long past
// its budget.
func TestDeadlineMidPipelineDegrades(t *testing.T) {
	const budget = 5 * time.Millisecond
	PanicHook = func(_, pass string) {
		if pass == "build" {
			time.Sleep(4 * budget)
		}
	}
	defer func() { PanicHook = nil }()

	rt := iloc.MustParse(fig1Src)
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	res, err := Allocate(ctx, rt, Options{Machine: target.WithRegs(4), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradeReason != DegradeReasonDeadline {
		t.Fatalf("Degraded = %v, DegradeReason = %q", res.Degraded, res.DegradeReason)
	}
}

// Cancellation means the caller abandoned the request: no degradation,
// just the cancellation error wrapped in the allocator's taxonomy.
func TestCancelReturnsErrorWithoutDegrading(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Allocate(ctx, rt, Options{Machine: target.WithRegs(4), Mode: ModeRemat})
	if res != nil || err == nil {
		t.Fatalf("cancelled allocation returned (%v, %v)", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	var ae *AllocError
	if !errors.As(err, &ae) || ae.Pass != "context" {
		t.Fatalf("expected *AllocError with pass \"context\", got %v", err)
	}
}

// DisableDegradation turns deadline expiry into an error instead of
// fallback code — the strict callers' contract.
func TestDeadlineWithDegradationDisabled(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Allocate(ctx, rt, Options{
		Machine: target.WithRegs(4), Mode: ModeRemat, DisableDegradation: true,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap context.DeadlineExceeded: %v", err)
	}
}

// A nil context is treated as context.Background(): the legacy
// facade entry points rely on it.
func TestNilContextAllocates(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	res, err := Allocate(nil, rt, Options{Machine: target.WithRegs(4), Mode: ModeRemat}) //nolint:staticcheck
	if err != nil || res.Degraded {
		t.Fatalf("nil-context allocation: res=%+v err=%v", res, err)
	}
}
