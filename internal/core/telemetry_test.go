package core

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/iloc"
	"repro/internal/target"
	"repro/internal/telemetry"
)

// traceOf allocates rt with a fresh tracer+registry and returns the
// recorded events plus the result.
func traceOf(t *testing.T, src string, opts Options) ([]telemetry.Event, *Result, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	opts.Telemetry = &telemetry.Sink{Metrics: reg, Trace: tr}
	res, err := Allocate(context.Background(), iloc.MustParse(src), opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Events(), res, reg
}

// signature reduces an event to its deterministic parts — everything
// except the timestamps.
func signature(e telemetry.Event) string {
	s := fmt.Sprintf("%s/%s/%c/tid%d", e.Cat, e.Name, e.Phase, e.TID)
	for _, a := range e.Args {
		if a.Str != "" {
			s += fmt.Sprintf(" %s=%s", a.Key, a.Str)
		} else {
			s += fmt.Sprintf(" %s=%d", a.Key, a.Val)
		}
	}
	return s
}

// TestTraceDeterminism: two allocations of the same routine under the
// same options record identical event sequences modulo timestamps —
// same events, same order, same args. This is what makes traces
// diffable across runs.
func TestTraceDeterminism(t *testing.T) {
	opts := Options{Machine: target.WithRegs(3), Mode: ModeRemat, Verify: true}
	ev1, _, _ := traceOf(t, fig1Src, opts)
	ev2, _, _ := traceOf(t, fig1Src, opts)
	if len(ev1) == 0 {
		t.Fatal("no events recorded")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event counts differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if s1, s2 := signature(ev1[i]), signature(ev2[i]); s1 != s2 {
			t.Fatalf("event %d differs:\n  run1: %s\n  run2: %s", i, s1, s2)
		}
	}
}

// TestTraceCoversPipeline: the trace must contain one pass span per
// executed pipeline pass (matching the Result's own records, which are
// the -stats source of truth), one iteration span per round, one alloc
// span, and — with Verify on — verifier rule spans.
func TestTraceCoversPipeline(t *testing.T) {
	events, res, reg := traceOf(t, fig1Src, Options{Machine: target.WithRegs(3), Mode: ModeRemat, Verify: true})

	var passes, iters, allocs, verifies []telemetry.Event
	for _, e := range events {
		switch e.Cat {
		case telemetry.CatPass:
			passes = append(passes, e)
		case telemetry.CatIteration:
			iters = append(iters, e)
		case telemetry.CatAlloc:
			allocs = append(allocs, e)
		case telemetry.CatVerify:
			verifies = append(verifies, e)
		}
	}
	var wantPasses []string
	for _, it := range res.Iterations {
		for _, ps := range it.Passes {
			wantPasses = append(wantPasses, ps.Name)
		}
	}
	if len(passes) != len(wantPasses) {
		t.Fatalf("trace has %d pass spans, Result records %d passes", len(passes), len(wantPasses))
	}
	for i, e := range passes {
		if e.Name != wantPasses[i] {
			t.Fatalf("pass span %d = %q, want %q", i, e.Name, wantPasses[i])
		}
	}
	if len(iters) != len(res.Iterations) {
		t.Fatalf("trace has %d iteration spans, want %d", len(iters), len(res.Iterations))
	}
	if len(allocs) != 1 || allocs[0].Name != res.Routine.Name {
		t.Fatalf("alloc spans = %+v, want one named %q", allocs, res.Routine.Name)
	}
	if len(verifies) == 0 {
		t.Fatal("no verifier rule spans despite Options.Verify")
	}

	// The registry tells the same story through metrics.
	if got := reg.Counter("core.allocations").Value(); got != 1 {
		t.Fatalf("core.allocations = %d, want 1", got)
	}
	if got := reg.Counter("core.iterations").Value(); got != int64(len(res.Iterations)) {
		t.Fatalf("core.iterations = %d, want %d", got, len(res.Iterations))
	}
	if got := reg.Histogram("core.pass.build").Snapshot().Count; got != int64(len(res.Iterations)) {
		t.Fatalf("core.pass.build histogram count = %d, want %d", got, len(res.Iterations))
	}
	if got := reg.Counter("verify.checks").Value(); got != 1 {
		t.Fatalf("verify.checks = %d, want 1", got)
	}
}

// TestSpanIsTheTimingSource: PassStat.Time must equal the trace span's
// duration exactly — the span replaced the ad-hoc time.Now pair, so the
// -stats table and the trace cannot disagree.
func TestSpanIsTheTimingSource(t *testing.T) {
	events, res, _ := traceOf(t, fig1Src, Options{Machine: target.WithRegs(3), Mode: ModeRemat})
	var spans []telemetry.Event
	for _, e := range events {
		if e.Cat == telemetry.CatPass {
			spans = append(spans, e)
		}
	}
	i := 0
	for _, it := range res.Iterations {
		for _, ps := range it.Passes {
			if spans[i].Dur != ps.Time {
				t.Fatalf("pass %s: span dur %v != PassStat.Time %v", ps.Name, spans[i].Dur, ps.Time)
			}
			i++
		}
	}
}

// TestCoreHookPathZeroAlloc: the exact instrumentation sequence the
// pipeline runner executes per pass — open span, end it with the full
// arg set, observe the pass histogram — allocates nothing when no sink
// is installed.
func TestCoreHookPathZeroAlloc(t *testing.T) {
	var tel *telemetry.Sink
	ps := &PassStat{Name: "build", Nodes: 10, Edges: 20, Coalesced: 3, Splits: 1, Spilled: 2, Remat: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tel.StartSpan(telemetry.CatPass, "build")
		_ = endPassSpan(&sp, ps)
		if tel.Enabled() {
			tel.Observe("core.pass.build", ps.Time.Nanoseconds())
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled pipeline hooks allocate %.1f times per run, want 0", allocs)
	}
}

// BenchmarkAllocateTelemetry benchmarks a full core allocation with
// telemetry off and on; the "off" variant's allocs/op is the baseline
// proving the hooks are free when disabled (compare with the telemetry
// package's BenchmarkSpanDisabled for the per-hook view).
func BenchmarkAllocateTelemetry(b *testing.B) {
	rt := iloc.MustParse(fig1Src)
	m := target.WithRegs(3)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Allocate(context.Background(), rt, Options{Machine: m, Mode: ModeRemat}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		sink := &telemetry.Sink{Metrics: telemetry.NewRegistry(), Trace: telemetry.NewTracer()}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Allocate(context.Background(), rt, Options{Machine: m, Mode: ModeRemat, Telemetry: sink}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
