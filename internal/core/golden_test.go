package core

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iloc"
	"repro/internal/target"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden allocation snapshots")

// Golden snapshots pin the exact allocator output on the Figure 1
// example, so any unintended behavioural drift (heuristic order, split
// placement, slot assignment) is caught immediately. Allocation is
// deterministic, so these are stable. Regenerate deliberately with
//
//	go test ./internal/core -run TestGolden -update-golden
func TestGoldenFig1Allocations(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"fig1_remat_r3", Options{Machine: target.WithRegs(3), Mode: ModeRemat}},
		{"fig1_chaitin_r3", Options{Machine: target.WithRegs(3), Mode: ModeChaitin}},
		{"fig1_remat_r16", Options{Machine: target.Standard(), Mode: ModeRemat}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Allocate(context.Background(), iloc.MustParse(fig1Src), c.opts)
			if err != nil {
				t.Fatal(err)
			}
			got := iloc.Print(res.Routine)
			path := filepath.Join("testdata", c.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Fatalf("allocation drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
