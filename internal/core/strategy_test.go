package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/target"
	"repro/internal/verify"
)

// Mode.String must name only the modes that exist; an out-of-range
// value renders as mode(N) instead of silently claiming to be remat.
func TestModeString(t *testing.T) {
	cases := []struct {
		mode Mode
		want string
	}{
		{ModeChaitin, "chaitin"},
		{ModeRemat, "remat"},
		{Mode(7), "mode(7)"},
		{Mode(-1), "mode(-1)"},
	}
	for _, c := range cases {
		if got := c.mode.String(); got != c.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(c.mode), got, c.want)
		}
	}
}

// An out-of-range Mode derives an unregistered strategy name, so it
// surfaces as an error rather than silently allocating as remat.
func TestAllocateRejectsUnknownMode(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	_, err := Allocate(context.Background(), rt, Options{Mode: Mode(7)})
	if err == nil || !strings.Contains(err.Error(), `"mode(7)"`) {
		t.Fatalf("Allocate with Mode(7) = %v, want unknown-strategy error", err)
	}
}

// The registry serves the four built-ins, in registration order, and a
// lookup miss names every valid choice.
func TestStrategyRegistry(t *testing.T) {
	names := StrategyNames()
	for _, want := range []string{"chaitin", "remat", "spill-everywhere", "ssa-spill"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry lacks %q (have %v)", want, names)
		}
	}
	if len(Strategies()) != len(names) {
		t.Fatalf("Strategies() has %d entries, StrategyNames() %d", len(Strategies()), len(names))
	}
	for _, s := range Strategies() {
		if s.Description() == "" {
			t.Errorf("strategy %q has no description", s.Name())
		}
	}

	_, err := LookupStrategy("bogus")
	var use *UnknownStrategyError
	if !errors.As(err, &use) {
		t.Fatalf("LookupStrategy(bogus) = %v, want *UnknownStrategyError", err)
	}
	if len(use.Registered) < 4 || !strings.Contains(err.Error(), "ssa-spill") {
		t.Fatalf("unknown-strategy error does not list the registry: %v", err)
	}
}

// Parameterized specs canonicalize: every spelling of the same
// configuration has one Spec, and parameters the strategy does not
// accept are rejected.
func TestStrategySpecCanonicalization(t *testing.T) {
	a, err := LookupStrategy("remat:no-bias,split=all-loops")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LookupStrategy("remat:split=all-loops,no-bias")
	if err != nil {
		t.Fatal(err)
	}
	if a.Spec() != b.Spec() {
		t.Fatalf("specs differ: %q vs %q", a.Spec(), b.Spec())
	}
	if plain, _ := LookupStrategy("remat"); plain.Spec() != "remat" {
		t.Fatalf("plain spec = %q", plain.Spec())
	}

	var o Options
	a.applyTo(&o)
	if o.Mode != ModeRemat || o.Split != SplitAllLoops || !o.DisableBiasedColoring {
		t.Fatalf("parameters not applied: %+v", o)
	}

	for _, bad := range []string{"remat:frobnicate", "remat:split=sideways", "spill-everywhere:split=all-loops", "ssa-spill:x=1"} {
		if _, err := LookupStrategy(bad); err == nil {
			t.Errorf("LookupStrategy(%q) succeeded, want error", bad)
		}
	}
}

// Back compatibility: Mode-based options and the equivalent strategy
// name produce byte-identical allocations, and parameterized strategy
// specs match the loose Options fields they replace.
func TestStrategyBackCompatByteIdentical(t *testing.T) {
	cases := []struct {
		name     string
		old, new Options
	}{
		{"remat", Options{Mode: ModeRemat}, Options{Strategy: "remat"}},
		{"chaitin", Options{Mode: ModeChaitin}, Options{Strategy: "chaitin"}},
		{"remat-starved", Options{Mode: ModeRemat, Machine: target.WithRegs(3)},
			Options{Strategy: "remat", Machine: target.WithRegs(3)}},
		{"split-param", Options{Mode: ModeRemat, Split: SplitAllLoops},
			Options{Strategy: "remat:split=all-loops"}},
		{"ablation-params",
			Options{Mode: ModeRemat, DisableBiasedColoring: true, DisableConservativeCoalescing: true},
			Options{Strategy: "remat:no-bias,no-coalesce"}},
		{"metric-param", Options{Mode: ModeChaitin, Metric: MetricCost},
			Options{Strategy: "chaitin:metric=cost"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			oldRes, err := Allocate(context.Background(), iloc.MustParse(fig1Src), c.old)
			if err != nil {
				t.Fatal(err)
			}
			newRes, err := Allocate(context.Background(), iloc.MustParse(fig1Src), c.new)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := iloc.Print(newRes.Routine), iloc.Print(oldRes.Routine); got != want {
				t.Fatalf("strategy output differs from Mode-based output:\n--- mode\n%s\n--- strategy\n%s", want, got)
			}
		})
	}
}

// Every registered strategy allocates the Figure 1 kernel, passes the
// independent verifier (standard and starved machines), computes the
// same answer as the virtual-register input, and stamps its canonical
// spec on the result.
func TestEveryStrategyAllocatesAndVerifies(t *testing.T) {
	for _, strat := range Strategies() {
		for _, m := range []*target.Machine{target.Standard(), target.WithRegs(3)} {
			name := strat.Name() + "@" + m.Name
			t.Run(name, func(t *testing.T) {
				rt := iloc.MustParse(fig1Src)
				res, err := Allocate(context.Background(), rt,
					Options{Strategy: strat.Name(), Machine: m, Verify: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Degraded {
					t.Fatalf("degraded: %s", res.DegradeReason)
				}
				if res.Strategy != strat.Spec() {
					t.Fatalf("Result.Strategy = %q, want %q", res.Strategy, strat.Spec())
				}
				if err := verify.Check(rt, res.Routine, m, verify.Options{Differential: true}); err != nil {
					t.Fatalf("verifier rejects %s output: %v\n%s", strat.Name(), err, iloc.Print(res.Routine))
				}
				runSame(t, rt, res.Routine, interp.Int(4))
			})
		}
	}
}

// The ssa-spill strategy's SSA-derived improvements are observable:
// relative to plain spill-everywhere it must never execute more memory
// traffic, and on code with a dead definition it elides the store.
func TestSSASpillElidesDeadStores(t *testing.T) {
	// r4 is computed and never used: spill-everywhere stores it, the
	// SSA form sees an unread web and skips the store.
	src := `routine deadstore()
L0:
    ldi r2, 7
    ldi r3, 35
    add r4, r2, r3
    add r5, r3, r2
    retr r5
`
	rt := iloc.MustParse(src)
	plain, err := Allocate(context.Background(), rt.Clone(), Options{Strategy: "spill-everywhere", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	ssa, err := Allocate(context.Background(), rt.Clone(), Options{Strategy: "ssa-spill", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	count := func(r *iloc.Routine) (stores int) {
		r.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
			if in.IsSpill && (in.Op == iloc.OpStoreai || in.Op == iloc.OpFstoreai) {
				stores++
			}
		})
		return
	}
	if ps, ss := count(plain.Routine), count(ssa.Routine); ss >= ps {
		t.Fatalf("ssa-spill emitted %d spill stores, plain spill-everywhere %d — dead store not elided:\n%s",
			ss, ps, iloc.Print(ssa.Routine))
	}
}

// Strategy resolution participates in option canonicalization: the
// spellings of one configuration collapse, distinct strategies stay
// distinct.
func TestStrategyCanonicalOptions(t *testing.T) {
	a := Options{Mode: ModeRemat}.Canonical()
	b := Options{Strategy: "remat"}.Canonical()
	if a.Strategy != "remat" || b.Strategy != "remat" || a.Mode != b.Mode {
		t.Fatalf("canonical forms differ: %+v vs %+v", a, b)
	}
	c := Options{Strategy: "remat:split=all-loops,no-bias"}.Canonical()
	d := Options{Strategy: "remat:no-bias,split=all-loops"}.Canonical()
	if c.Strategy != d.Strategy || c.Split != SplitAllLoops || !c.DisableBiasedColoring {
		t.Fatalf("parameterized canonical forms differ: %+v vs %+v", c, d)
	}
	e := Options{Strategy: "ssa-spill"}.Canonical()
	if e.Strategy != "ssa-spill" {
		t.Fatalf("ssa-spill canonical strategy = %q", e.Strategy)
	}
}
