package core

import (
	"fmt"

	"repro/internal/iloc"
)

// spillEverywhere is the graceful-degradation allocator: every virtual
// register lives in a frame slot, every use reloads it into a scratch
// color just before the instruction, and every definition stores it
// right back. The output is as slow as allocated code gets, but the
// construction is a single linear pass with no coloring, no liveness and
// no iteration, so it terminates on any verifiable input and cannot
// spill-loop — the always-terminating baseline of the spill-everywhere
// literature (Bouchez, Darte & Rastello). Allocate falls back to it when
// the iterated build–color–spill loop fails (non-convergence, a
// contained panic, or a verifier rejection), so one poisoned routine
// degrades to correct-but-slow code instead of failing a whole batch.
//
// Scratch registers are colors 1 and 2 of each bank (every valid
// machine exposes at least two); they are dead between instructions, so
// nothing is live across a call and the caller-save discipline holds
// trivially.
func spillEverywhere(input *iloc.Routine, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, recovered(input.Name, "spill-everywhere", 0, r)
		}
	}()

	m := opts.Machine
	rt := input.Clone()
	frameBase := scanFrameBase(rt)
	nextSlot := 0
	var slots [iloc.NumClasses]map[int]int64
	for c := range slots {
		slots[c] = make(map[int]int64)
	}
	slotFor := func(c iloc.Class, n int) int64 {
		if off, ok := slots[c][n]; ok {
			return off
		}
		off := frameBase + int64(nextSlot)*8
		nextSlot++
		slots[c][n] = off
		return off
	}

	var st IterationStats
	for _, b := range rt.Blocks {
		out := make([]*iloc.Instr, 0, 3*len(b.Instrs))
		for _, in := range b.Instrs {
			if in.Op == iloc.OpPhi {
				return nil, fmt.Errorf("core: spill-everywhere: φ-node in %s", input.Name)
			}
			// Reload each distinct spilled use into its own scratch color.
			assigned := map[iloc.Reg]iloc.Reg{}
			next := [iloc.NumClasses]int{1, 1}
			for i := 0; i < in.Op.NSrc(); i++ {
				u := in.Src[i]
				if !u.Valid() || u.N == 0 {
					continue
				}
				t, ok := assigned[u]
				if !ok {
					col := next[u.Class]
					next[u.Class]++
					if col > m.K(u.Class) {
						return nil, fmt.Errorf("core: spill-everywhere: %q needs %d scratch %s registers, machine %s has %d",
							in, col, u.Class, m.Name, m.K(u.Class))
					}
					t = iloc.Reg{Class: u.Class, N: col}
					assigned[u] = t
					out = append(out, &iloc.Instr{
						Op:  reloadOp(u.Class),
						Dst: t, Src: [2]iloc.Reg{iloc.FP, iloc.NoReg},
						Imm: slotFor(u.Class, u.N), IsSpill: true,
					})
					st.Spilled[u.Class]++
				}
				in.Src[i] = t
			}
			// The definition computes into scratch color 1 (written only
			// after the sources are read) and is stored to its slot.
			if d := in.Def(); d.Valid() && d.N != 0 {
				t := iloc.Reg{Class: d.Class, N: 1}
				in.Dst = t
				out = append(out, in)
				out = append(out, &iloc.Instr{
					Op:  storeOp(d.Class),
					Dst: iloc.NoReg,
					Src: [2]iloc.Reg{t, iloc.FP},
					Imm: slotFor(d.Class, d.N), IsSpill: true,
				})
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}

	rt.FrameWords = int(frameBase/8) + nextSlot
	rt.Allocated = true
	for c := range rt.NextReg {
		rt.NextReg[c] = m.Regs[c]
		rt.CallerSave[c] = m.CallerSave
	}

	ranges := len(slots[iloc.ClassInt]) + len(slots[iloc.ClassFlt])
	st.Passes = []PassStat{{Name: "spill-everywhere", Spilled: ranges}}
	return &Result{
		Routine:       rt,
		Iterations:    []IterationStats{st},
		SpilledRanges: ranges,
		Mode:          opts.Mode,
		Machine:       m,
	}, nil
}
