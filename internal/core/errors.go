package core

import (
	"fmt"
	"runtime/debug"
)

// DegradeReasonDeadline is the Result.DegradeReason recorded when an
// allocation's context deadline expired mid-pipeline and the routine
// was re-allocated by the spill-everywhere fallback. Deadline-aware
// callers match on it: the serving layer reports it to clients, and the
// driver refuses to cache such results (the cache key does not include
// the deadline, so a deadline-shaped result must never satisfy a later,
// more patient request).
const DegradeReasonDeadline = "deadline"

// AllocError is the structured failure report of one allocation: which
// routine failed, in which pipeline pass, on which iteration of the
// spill/color loop, and why. Panics raised inside a pass are recovered
// and wrapped here, so an allocator bug on one routine surfaces as an
// ordinary error value instead of killing the caller — the property the
// batch driver's per-unit isolation relies on.
type AllocError struct {
	// Routine is the name of the routine being allocated.
	Routine string
	// Pass names the pipeline pass that failed; "loop" marks
	// non-convergence of the spill/color loop itself, "verify" a
	// post-allocation verifier rejection, and "" a failure outside the
	// pipeline.
	Pass string
	// Iteration is the 0-based round of the spill/color loop.
	Iteration int
	// Err is the underlying cause. For a recovered panic it wraps the
	// panic value; Stack then holds the goroutine stack at recovery.
	Err error
	// Stack is the stack trace captured when a panic was recovered,
	// empty for ordinary errors.
	Stack string
}

func (e *AllocError) Error() string {
	where := e.Routine
	if e.Pass != "" {
		where = fmt.Sprintf("%s: pass %s (iteration %d)", e.Routine, e.Pass, e.Iteration)
	}
	return fmt.Sprintf("core: %s: %v", where, e.Err)
}

func (e *AllocError) Unwrap() error { return e.Err }

// recovered converts a recovered panic value into an AllocError.
func recovered(routine, pass string, iteration int, v any) *AllocError {
	err, ok := v.(error)
	if !ok {
		err = fmt.Errorf("panic: %v", v)
	} else {
		err = fmt.Errorf("panic: %w", err)
	}
	return &AllocError{
		Routine:   routine,
		Pass:      pass,
		Iteration: iteration,
		Err:       err,
		Stack:     string(debug.Stack()),
	}
}

// PanicHook is a fault-injection point for robustness tests: when
// non-nil it runs at the start of every pipeline pass and may panic to
// simulate an allocator bug in that pass. It is consulted only by the
// pass runner — never by the spill-everywhere fallback — so tests can
// prove that a poisoned pipeline still degrades to a sound allocation.
// Production code must leave it nil; it is not consulted concurrently
// with being set (set it before allocating, clear it after).
var PanicHook func(routine, pass string)
