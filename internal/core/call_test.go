package core

import (
	"context"
	"testing"

	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/target"
)

// runProgram allocates caller and callee with the same options and
// executes them together; the interpreter poisons caller-save registers
// after each call, so a wrong color assignment shows up as a wrong
// answer.
func runProgram(t *testing.T, callerSrc, calleeSrc string, opts Options, args ...interp.Value) *interp.Outcome {
	t.Helper()
	caller, err := Allocate(context.Background(), iloc.MustParse(callerSrc), opts)
	if err != nil {
		t.Fatalf("caller: %v", err)
	}
	callee, err := Allocate(context.Background(), iloc.MustParse(calleeSrc), opts)
	if err != nil {
		t.Fatalf("callee: %v", err)
	}
	e, err := interp.New(caller.Routine, interp.Config{Routines: []*iloc.Routine{callee.Routine}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(args...)
	if err != nil {
		t.Fatalf("run: %v\n--- caller ---\n%s--- callee ---\n%s",
			err, iloc.Print(caller.Routine), iloc.Print(callee.Routine))
	}
	return out
}

const squareSrc = `
routine square(r1)
entry:
    getparam r1, 0
    mul r2, r1, r1
    retr r2
`

// Values live across a call must land in callee-save colors; the
// interpreter's poisoning makes any mistake visible.
func TestCallLiveAcrossGetsCalleeSave(t *testing.T) {
	callerSrc := `
routine main(r1)
entry:
    getparam r1, 0
    ldi r2, 100          ; live across the call
    ldi r3, 7            ; live across the call
    setarg r1, 0
    call square
    getret r4
    add r4, r4, r2
    add r4, r4, r3
    retr r4
`
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		out := runProgram(t, callerSrc, squareSrc, Options{Machine: target.Standard(), Mode: mode}, interp.Int(6))
		if out.RetInt != 36+100+7 {
			t.Fatalf("mode %v: result = %d, want 143", mode, out.RetInt)
		}
	}
}

// With heavy pressure around the call, ranges across it either take
// callee-save colors or spill — never a caller-save color.
func TestCallPressureAroundCall(t *testing.T) {
	callerSrc := `
routine main(r1)
entry:
    getparam r1, 0
    ldi r2, 1
    ldi r3, 2
    ldi r4, 3
    ldi r5, 4
    ldi r6, 5
    ldi r7, 6
    ldi r8, 7
    ldi r9, 8
    setarg r1, 0
    call square
    getret r10
    add r10, r10, r2
    add r10, r10, r3
    add r10, r10, r4
    add r10, r10, r5
    add r10, r10, r6
    add r10, r10, r7
    add r10, r10, r8
    add r10, r10, r9
    retr r10
`
	for _, regs := range []int{16, 10, 8} {
		for _, mode := range []Mode{ModeChaitin, ModeRemat} {
			out := runProgram(t, callerSrc, squareSrc, Options{Machine: target.WithRegs(regs), Mode: mode}, interp.Int(3))
			if out.RetInt != 9+36 {
				t.Fatalf("regs=%d mode=%v: result = %d, want 45", regs, mode, out.RetInt)
			}
		}
	}
}

// A rematerializable value used on both sides of a call can be
// recomputed after it instead of occupying a callee-save register.
func TestCallRematAcrossCall(t *testing.T) {
	callerSrc := `
routine main()
data tab ro 2 = 5 9
entry:
    lda r1, tab          ; never-killed; used before and after the call
    load r2, r1
    setarg r2, 0
    call square
    getret r3
    loadai r4, r1, 8
    add r3, r3, r4
    retr r3
`
	out := runProgram(t, callerSrc, squareSrc, Options{Machine: target.WithRegs(8), Mode: ModeRemat})
	if out.RetInt != 25+9 {
		t.Fatalf("result = %d, want 34", out.RetInt)
	}
}

// Calls inside loops: the across-call constraint interacts with the
// 10^depth spill weights.
func TestCallInLoop(t *testing.T) {
	callerSrc := `
routine main(r1)
entry:
    getparam r1, 0
    ldi r2, 0            ; i, live across the call every iteration
    ldi r3, 0            ; acc, likewise
    jmp loop
loop:
    sub r4, r2, r1
    br ge r4, done, body
body:
    setarg r2, 0
    call square
    getret r5
    add r3, r3, r5
    addi r2, r2, 1
    jmp loop
done:
    retr r3
`
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		out := runProgram(t, callerSrc, squareSrc, Options{Machine: target.Standard(), Mode: mode}, interp.Int(5))
		if out.RetInt != 0+1+4+9+16 {
			t.Fatalf("mode %v: Σi² = %d, want 30", mode, out.RetInt)
		}
	}
}

// Recursive routines allocate and run correctly (each activation has its
// own frame, so spill slots never collide across activations).
func TestCallRecursiveAllocated(t *testing.T) {
	fibSrc := `
routine fib(r1)
entry:
    getparam r1, 0
    ldi r2, 2
    sub r2, r1, r2
    br lt r2, base, rec
base:
    retr r1
rec:
    subi r3, r1, 1
    setarg r3, 0
    call fib
    getret r4            ; fib(n-1), live across the second call
    subi r3, r1, 2
    setarg r3, 0
    call fib
    getret r5
    add r4, r4, r5
    retr r4
`
	res, err := Allocate(context.Background(), iloc.MustParse(fibSrc), Options{Machine: target.Standard(), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	// The main routine is fib itself; its self-calls resolve to it.
	e, err := interp.New(res.Routine, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(interp.Int(12))
	if err != nil {
		t.Fatalf("%v\n%s", err, iloc.Print(res.Routine))
	}
	if out.RetInt != 144 {
		t.Fatalf("fib(12) = %d, want 144", out.RetInt)
	}
}
