package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/iloc"
	"repro/internal/interp"
	"repro/internal/target"
)

// checkRegBounds verifies every register number in allocated code fits
// the machine.
func checkRegBounds(t *testing.T, rt *iloc.Routine, m *target.Machine) {
	t.Helper()
	rt.ForEachInstr(func(b *iloc.Block, _ int, in *iloc.Instr) {
		check := func(r iloc.Reg) {
			if !r.Valid() {
				return
			}
			if r.N < 0 || r.N >= m.Regs[r.Class] {
				t.Fatalf("register %s out of machine range in %q (block %s)", r, in, b.Label)
			}
		}
		check(in.Def())
		for _, u := range in.Uses() {
			check(u)
		}
	})
}

// runBoth executes the routine before and after allocation and checks
// the observable result is identical.
func runBoth(t *testing.T, rt *iloc.Routine, opts Options, args ...interp.Value) (*interp.Outcome, *interp.Outcome) {
	t.Helper()
	e0, err := interp.New(rt, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := e0.Run(args...)
	if err != nil {
		t.Fatal(err)
	}

	res, err := Allocate(context.Background(), rt, opts)
	if err != nil {
		t.Fatalf("allocate (%v): %v", opts.Mode, err)
	}
	if !res.Routine.Allocated {
		t.Fatal("result not marked allocated")
	}
	checkRegBounds(t, res.Routine, opts.Machine)
	if err := iloc.Verify(res.Routine, false); err != nil {
		t.Fatalf("allocated code fails verify: %v\n%s", err, iloc.Print(res.Routine))
	}

	e1, err := interp.New(res.Routine, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e1.Run(args...)
	if err != nil {
		t.Fatalf("allocated run: %v\n%s", err, iloc.Print(res.Routine))
	}
	if got.HasRet != want.HasRet || got.RetInt != want.RetInt ||
		(math.Abs(got.RetFloat-want.RetFloat) > 1e-9*(1+math.Abs(want.RetFloat))) {
		t.Fatalf("allocation changed behaviour: got (%d,%g), want (%d,%g)\n%s",
			got.RetInt, got.RetFloat, want.RetInt, want.RetFloat, iloc.Print(res.Routine))
	}
	return want, got
}

const fig1Src = `
routine fig1(r9)
data arr rw 64
data lab rw 16 = 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5 3.5
entry:
    getparam r9, 0
    lda r1, lab       ; p <- Label
    fldi f1, 0.0
    ldi r2, 0
    jmp loop1
loop1:
    fload f2, r1      ; y <- y + [p]
    fadd f1, f1, f2
    addi r2, r2, 1
    sub r3, r9, r2
    br gt r3, loop1, mid
mid:
    ldi r4, 0
    jmp loop2
loop2:
    fload f3, r1      ; y <- y + [p]
    fadd f1, f1, f3
    addi r1, r1, 8    ; p <- p + 8
    addi r4, r4, 1
    sub r5, r9, r4
    br gt r5, loop2, done
done:
    retf f1
`

func TestAllocateFig1NoPressure(t *testing.T) {
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		rt := iloc.MustParse(fig1Src)
		want, got := runBoth(t, rt, Options{Machine: target.Standard(), Mode: mode}, interp.Int(8))
		if want.RetFloat != 8*3.5*2 {
			t.Fatalf("reference result wrong: %g", want.RetFloat)
		}
		_ = got
	}
}

func TestAllocateStraightLine(t *testing.T) {
	src := `
routine f()
entry:
    ldi r1, 1
    ldi r2, 2
    ldi r3, 3
    ldi r4, 4
    ldi r5, 5
    add r6, r1, r2
    add r6, r6, r3
    add r6, r6, r4
    add r6, r6, r5
    retr r6
`
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		rt := iloc.MustParse(src)
		_, got := runBoth(t, rt, Options{Machine: target.WithRegs(4), Mode: mode})
		if got.RetInt != 15 {
			t.Fatalf("ret = %d", got.RetInt)
		}
	}
}

// High pressure in the first loop forces p to spill. The remat allocator
// must rematerialize the constant value of p inside loop1 (ldi/lda, 1
// cycle) instead of reloading it from the stack (2 cycles), and must not
// add stores. The key Figure 1 shape: remat spill cost < Chaitin spill
// cost.
func TestFig1RematBeatsChaitin(t *testing.T) {
	// 3 integer registers (2 colors) force p itself to spill; at 4 only
	// the rematerializable bound spills and the modes tie.
	m := target.WithRegs(3)
	n := int64(10)

	results := map[Mode]*interp.Outcome{}
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		rt := iloc.MustParse(fig1Src)
		_, got := runBoth(t, rt, Options{Machine: m, Mode: mode}, interp.Int(n))
		results[mode] = got
	}
	ch, re := results[ModeChaitin], results[ModeRemat]
	if ch.RetFloat != re.RetFloat {
		t.Fatal("modes disagree on the answer")
	}
	chCycles, reCycles := ch.Cycles(2, 1), re.Cycles(2, 1)
	t.Logf("chaitin: %d cycles (%d loads, %d stores, %d ldi/lda)", chCycles,
		ch.Count(iloc.OpLoad, iloc.OpLoadai, iloc.OpFload, iloc.OpFloadai),
		ch.Count(iloc.OpStore, iloc.OpStoreai, iloc.OpFstoreai),
		ch.Count(iloc.OpLdi, iloc.OpLda))
	t.Logf("remat:   %d cycles (%d loads, %d stores, %d ldi/lda)", reCycles,
		re.Count(iloc.OpLoad, iloc.OpLoadai, iloc.OpFload, iloc.OpFloadai),
		re.Count(iloc.OpStore, iloc.OpStoreai, iloc.OpFstoreai),
		re.Count(iloc.OpLdi, iloc.OpLda))
	if reCycles >= chCycles {
		t.Fatalf("rematerialization should win under pressure: %d vs %d cycles", reCycles, chCycles)
	}
	// The Figure 1 signature: fewer loads, no extra stores, more lda
	// (p rematerialized in the first loop).
	if re.Count(iloc.OpLda) <= ch.Count(iloc.OpLda) {
		t.Fatal("remat mode should issue more lda (rematerializing p)")
	}
	if re.Count(iloc.OpLoad, iloc.OpLoadai) >= ch.Count(iloc.OpLoad, iloc.OpLoadai) {
		t.Fatal("remat mode should issue fewer reloads")
	}
}

func TestDiamondWithMerge(t *testing.T) {
	src := `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, a, b
a:
    ldi r2, 10
    jmp join
b:
    ldi r2, 20
    jmp join
join:
    add r3, r2, r1
    retr r3
`
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		for _, n := range []int64{5, -5} {
			rt := iloc.MustParse(src)
			want := n + 10
			if n <= 0 {
				want = n + 20
			}
			_, got := runBoth(t, rt, Options{Machine: target.WithRegs(4), Mode: mode}, interp.Int(n))
			if got.RetInt != want {
				t.Fatalf("mode %v n=%d: ret %d, want %d", mode, n, got.RetInt, want)
			}
		}
	}
}

func TestFloatPressure(t *testing.T) {
	src := `
routine f(r1)
entry:
    getparam r1, 0
    fldi f1, 1.0
    fldi f2, 2.0
    fldi f3, 3.0
    fldi f4, 4.0
    fldi f5, 5.0
    cvtif f6, r1
    fadd f7, f1, f2
    fadd f7, f7, f3
    fadd f7, f7, f4
    fadd f7, f7, f5
    fadd f7, f7, f6
    fmul f7, f7, f1
    fadd f7, f7, f2
    retf f7
`
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		rt := iloc.MustParse(src)
		_, got := runBoth(t, rt, Options{Machine: target.WithRegs(3), Mode: mode}, interp.Int(7))
		if got.RetFloat != 24 {
			t.Fatalf("ret = %g, want 24", got.RetFloat)
		}
	}
}

// Swap in a loop exercises the parallel-copy sequencer in renumber: the
// two φs at the loop head form a copy cycle on the back edge when
// splitting is forced at all φs.
func TestLoopSwapParallelCopy(t *testing.T) {
	src := `
routine fib(r1)
entry:
    getparam r1, 0
    ldi r2, 0       ; a
    ldi r3, 1       ; b
    ldi r4, 0       ; i
    jmp loop
loop:
    sub r5, r4, r1
    br ge r5, done, body
body:
    add r6, r2, r3  ; t = a+b
    mov r2, r3      ; a = b
    mov r3, r6      ; b = t
    addi r4, r4, 1
    jmp loop
done:
    retr r2
`
	for _, mode := range []Mode{ModeChaitin, ModeRemat} {
		for _, split := range []SplitScheme{SplitNone, SplitAtPhis, SplitAllLoops, SplitOuterLoops, SplitInactiveLoops} {
			if mode == ModeChaitin && split != SplitNone {
				continue
			}
			rt := iloc.MustParse(src)
			_, got := runBoth(t, rt, Options{Machine: target.WithRegs(4), Mode: mode, Split: split}, interp.Int(10))
			if got.RetInt != 55 { // fib(10)
				t.Fatalf("mode %v split=%v: fib(10) = %d, want 55", mode, split, got.RetInt)
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	res, err := Allocate(context.Background(), rt, Options{Machine: target.WithRegs(4), Mode: ModeRemat})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iteration stats")
	}
	if res.SpilledRanges == 0 {
		t.Fatal("expected spills on a 4-register machine")
	}
	if res.Iterations[0].Splits == 0 {
		t.Fatal("fig1 should need at least one split")
	}
	tot := res.TotalTimes()
	if tot.Total() <= 0 {
		t.Fatal("phase times not recorded")
	}
}

func TestInputRoutineNotModified(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	before := iloc.Print(rt)
	if _, err := Allocate(context.Background(), rt, Options{Machine: target.WithRegs(4), Mode: ModeRemat}); err != nil {
		t.Fatal(err)
	}
	if iloc.Print(rt) != before {
		t.Fatal("Allocate modified its input")
	}
}

func TestRejectsBadInput(t *testing.T) {
	rt := iloc.MustParse(fig1Src)
	rt.Blocks[0].Instrs[0].Dst = iloc.IntReg(999)
	if _, err := Allocate(context.Background(), rt, Options{Machine: target.Standard()}); err == nil {
		t.Fatal("invalid input accepted")
	}
	m := target.WithRegs(2)
	if _, err := Allocate(context.Background(), iloc.MustParse(fig1Src), Options{Machine: m}); err == nil {
		t.Fatal("unusable machine accepted")
	}
}
