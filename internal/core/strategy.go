package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/iloc"
)

// This file is the allocation-strategy layer: a named, registered
// pipeline constructor per allocator variant. A Strategy bundles a name,
// a description, an option-shaping step (the per-strategy configuration:
// mode, splitting scheme, spill metric, ablation switches) and the
// pipeline itself (the iterated build–color–spill loop, or a one-pass
// construction like spill-everywhere). Everything above core — the
// driver's cache keys, the regalloc facade, the HTTP service, the CLIs
// and the experiments — selects allocator behaviour through this
// registry rather than through loose Options booleans, so a new
// allocator variant plugs in by registering one value.

// StrategyRun is a strategy's pipeline: it allocates one routine under
// fully-shaped options. The context bounds the allocation where the
// pipeline can run for long.
type StrategyRun func(ctx context.Context, rt *iloc.Routine, opts Options) (*Result, error)

// Strategy is one registered allocation strategy. Construct external
// strategies with NewStrategy; the built-ins (chaitin, remat,
// spill-everywhere, ssa-spill) are registered by this package's init.
type Strategy struct {
	name        string
	description string
	// apply shapes the options before allocation (sets the mode, the
	// splitting scheme, the ablation switches); nil means the strategy
	// takes the options as given.
	apply func(o *Options)
	// run is the pipeline constructor.
	run StrategyRun
	// param maps one "key=value" (or bare flag) parameter onto an
	// option-shaping step; nil means the strategy takes no parameters.
	param func(key, val string) (func(o *Options), error)
	// canon derives the canonical parameter texts back out of
	// fully-shaped options; nil means the base name is always the
	// canonical spec.
	canon func(o Options) []string
	// params holds the canonicalized parameters of a derived strategy
	// (LookupStrategy of a "name:k=v,..." spec), sorted by text.
	params []strategyParam
}

// strategyParam is one applied parameter of a derived strategy.
type strategyParam struct {
	text string // canonical "key" or "key=value" form
	set  func(o *Options)
}

// NewStrategy builds a strategy for registration. The run function is
// the whole pipeline; apply (optional) shapes the options first.
func NewStrategy(name, description string, apply func(o *Options), run StrategyRun) *Strategy {
	return &Strategy{name: name, description: description, apply: apply, run: run}
}

// Name returns the strategy's registered (base) name.
func (s *Strategy) Name() string { return s.name }

// Description returns the one-line human description.
func (s *Strategy) Description() string { return s.description }

// Spec returns the canonical spec naming this exact strategy: the base
// name, plus any parameters sorted into a stable order
// ("remat:no-bias,split=all-loops"). Two specs are equal exactly when
// the strategies configure identical allocations — the property the
// driver's cache key relies on.
func (s *Strategy) Spec() string {
	if len(s.params) == 0 {
		return s.name
	}
	texts := make([]string, len(s.params))
	for i, p := range s.params {
		texts[i] = p.text
	}
	return s.name + ":" + strings.Join(texts, ",")
}

// specFor returns the canonical spec of this strategy as configured by
// fully-shaped options: the base name plus the parameters implied by
// the option fields the strategy accepts, sorted. Unlike Spec, which
// renders only explicitly-spelled parameters, specFor folds loose
// option fields (a Split set directly on Options rather than via
// "split=") into the same canonical text, so every spelling of one
// configuration shares one spec — the property the driver's cache key
// relies on.
func (s *Strategy) specFor(o Options) string {
	if s.canon == nil {
		return s.name
	}
	params := s.canon(o)
	if len(params) == 0 {
		return s.name
	}
	sort.Strings(params)
	return s.name + ":" + strings.Join(params, ",")
}

// applyTo shapes the options: the base strategy's apply step, then each
// parameter in canonical order.
func (s *Strategy) applyTo(o *Options) {
	if s.apply != nil {
		s.apply(o)
	}
	for _, p := range s.params {
		p.set(o)
	}
}

// withParams derives a parameterized copy of the strategy. Parameters
// are deduplicated by key (last one wins) and sorted, so every spelling
// of the same configuration canonicalizes to one Spec.
func (s *Strategy) withParams(raw []string) (*Strategy, error) {
	if s.param == nil {
		return nil, fmt.Errorf("strategy %q takes no parameters", s.name)
	}
	byKey := map[string]strategyParam{}
	for _, p := range raw {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		key, val := p, ""
		if i := strings.IndexByte(p, '='); i >= 0 {
			key, val = p[:i], p[i+1:]
		}
		set, err := s.param(key, val)
		if err != nil {
			return nil, fmt.Errorf("strategy %q: %w", s.name, err)
		}
		byKey[key] = strategyParam{text: p, set: set}
	}
	if len(byKey) == 0 {
		return s, nil
	}
	d := *s
	d.params = make([]strategyParam, 0, len(byKey))
	for _, p := range byKey {
		d.params = append(d.params, p)
	}
	sort.Slice(d.params, func(i, j int) bool { return d.params[i].text < d.params[j].text })
	return &d, nil
}

// UnknownStrategyError reports a LookupStrategy miss. The serving layer
// surfaces Registered to clients so a 400 names every valid choice.
type UnknownStrategyError struct {
	Name       string
	Registered []string
}

func (e *UnknownStrategyError) Error() string {
	return fmt.Sprintf("unknown strategy %q (registered: %s)", e.Name, strings.Join(e.Registered, ", "))
}

var (
	strategyMu    sync.RWMutex
	strategyReg   = map[string]*Strategy{}
	strategyOrder []string
)

// RegisterStrategy adds a strategy to the registry. Registering a nil
// strategy, an empty or parameterized name, or a duplicate panics —
// registration is init-time wiring, and a bad registration is a
// programming error.
func RegisterStrategy(s *Strategy) {
	if s == nil || s.name == "" || s.run == nil {
		panic("core: RegisterStrategy: strategy needs a name and a run function")
	}
	if strings.ContainsAny(s.name, ":,= \t\n") {
		panic(fmt.Sprintf("core: RegisterStrategy: invalid name %q", s.name))
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategyReg[s.name]; dup {
		panic(fmt.Sprintf("core: RegisterStrategy: duplicate strategy %q", s.name))
	}
	strategyReg[s.name] = s
	strategyOrder = append(strategyOrder, s.name)
}

// Strategies lists the registered strategies in registration order.
func Strategies() []*Strategy {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	out := make([]*Strategy, len(strategyOrder))
	for i, name := range strategyOrder {
		out[i] = strategyReg[name]
	}
	return out
}

// StrategyNames lists the registered strategy names in registration
// order.
func StrategyNames() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	return append([]string(nil), strategyOrder...)
}

// LookupStrategy resolves a strategy spec: a registered name, optionally
// followed by ":" and comma-separated parameters ("remat:split=all-loops,
// no-bias"). An unregistered base name returns *UnknownStrategyError
// listing the valid names; a parameter the strategy does not accept is
// an ordinary error.
func LookupStrategy(spec string) (*Strategy, error) {
	name, rest := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, rest = spec[:i], spec[i+1:]
	}
	strategyMu.RLock()
	s, ok := strategyReg[name]
	strategyMu.RUnlock()
	if !ok {
		return nil, &UnknownStrategyError{Name: name, Registered: StrategyNames()}
	}
	if rest == "" {
		return s, nil
	}
	return s.withParams(strings.Split(rest, ","))
}

// runIterated is the shared pipeline of the chaitin and remat
// strategies: the iterated build–color–spill loop of Figure 2.
func runIterated(ctx context.Context, rt *iloc.Routine, opts Options) (*Result, error) {
	return allocate(ctx, rt, opts)
}

// splitSchemeByName maps the wire/CLI names of the §6 schemes.
func splitSchemeByName(name string) (SplitScheme, error) {
	for _, s := range []SplitScheme{SplitNone, SplitAllLoops, SplitOuterLoops, SplitInactiveLoops, SplitAtPhis} {
		if s.String() == name {
			return s, nil
		}
	}
	return SplitNone, fmt.Errorf("unknown split scheme %q", name)
}

// spillMetricByName maps the CLI names of the spill-candidate metrics.
func spillMetricByName(name string) (SpillMetric, error) {
	switch name {
	case "cost/degree":
		return MetricCostOverDegree, nil
	case "cost/degree2", "cost/degree²":
		return MetricCostOverDegreeSquared, nil
	case "cost":
		return MetricCost, nil
	}
	return MetricCostOverDegree, fmt.Errorf("unknown spill metric %q", name)
}

// metricParam is the one parameter chaitin and remat share.
func metricParam(key, val string) (func(o *Options), error) {
	if key != "metric" {
		return nil, fmt.Errorf("unknown parameter %q", key)
	}
	m, err := spillMetricByName(val)
	if err != nil {
		return nil, err
	}
	return func(o *Options) { o.Metric = m }, nil
}

// metricCanon renders the metric parameter when it differs from the
// default, in the ASCII spelling spillMetricByName accepts.
func metricCanon(o Options) []string {
	switch o.Metric {
	case MetricCostOverDegreeSquared:
		return []string{"metric=cost/degree2"}
	case MetricCost:
		return []string{"metric=cost"}
	}
	return nil
}

// rematCanon derives remat's canonical parameters from the option
// fields its pipeline consults.
func rematCanon(o Options) []string {
	params := metricCanon(o)
	if o.Split != SplitNone {
		params = append(params, "split="+o.Split.String())
	}
	if o.DisableConservativeCoalescing {
		params = append(params, "no-coalesce")
	}
	if o.DisableBiasedColoring {
		params = append(params, "no-bias")
	}
	if o.DisableLookahead {
		params = append(params, "no-lookahead")
	}
	return params
}

// rematParam maps the remat strategy's parameters — §6's splitting
// schemes, the spill metric, and the paper's ablation switches — onto
// the option fields the pipeline passes consult.
func rematParam(key, val string) (func(o *Options), error) {
	switch key {
	case "split":
		s, err := splitSchemeByName(val)
		if err != nil {
			return nil, err
		}
		return func(o *Options) { o.Split = s }, nil
	case "metric":
		return metricParam(key, val)
	case "no-coalesce":
		return func(o *Options) { o.DisableConservativeCoalescing = true }, nil
	case "no-bias":
		return func(o *Options) { o.DisableBiasedColoring = true }, nil
	case "no-lookahead":
		return func(o *Options) { o.DisableLookahead = true }, nil
	}
	return nil, fmt.Errorf("unknown parameter %q", key)
}

func init() {
	RegisterStrategy(&Strategy{
		name:        "chaitin",
		description: "Chaitin-style optimistic coloring with whole-range rematerialization (the paper's Table 1 baseline)",
		apply:       func(o *Options) { o.Mode = ModeChaitin },
		run:         runIterated,
		param:       metricParam,
		canon:       metricCanon,
	})
	RegisterStrategy(&Strategy{
		name:        "remat",
		description: "the paper's allocator: per-value tags, splits, conservative coalescing, biased coloring (default)",
		apply:       func(o *Options) { o.Mode = ModeRemat },
		run:         runIterated,
		param:       rematParam,
		canon:       rematCanon,
	})
	RegisterStrategy(&Strategy{
		name:        "spill-everywhere",
		description: "guaranteed-terminating baseline: every value lives in a frame slot, reloaded per use (Bouchez/Darte/Rastello)",
		run: func(_ context.Context, rt *iloc.Routine, opts Options) (*Result, error) {
			return spillEverywhere(rt, opts)
		},
	})
	RegisterStrategy(&Strategy{
		name:        "ssa-spill",
		description: "SSA-form spill-everywhere: one slot per φ-congruence web, dead stores elided, sparse-liveness-pruned φs",
		run: func(_ context.Context, rt *iloc.Routine, opts Options) (*Result, error) {
			return ssaSpill(rt, opts)
		},
	})
}
