package core

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cfg"
	"repro/internal/iloc"
	"repro/internal/rgen"
	"repro/internal/target"
	"repro/internal/verify"
)

// FuzzAllocate drives the whole robustness contract from hostile text:
// whatever parses and verifies as input ILOC, Allocate must finish
// without a panic escaping, and — for inputs with no undefined uses —
// every allocation it hands back must satisfy the independent checker,
// degraded or not.
func FuzzAllocate(f *testing.F) {
	// Seeds: the repository's example files, generator output at a few
	// shapes, and small hand-written routines covering calls and spills.
	if paths, err := filepath.Glob("../../testdata/*.iloc"); err == nil {
		for _, p := range paths {
			if b, err := os.ReadFile(p); err == nil {
				f.Add(string(b))
			}
		}
	}
	rng := rand.New(rand.NewSource(1992))
	for _, cfg := range []rgen.Config{{}, {MaxDepth: 1, Regions: 3}, {MaxDepth: 3, Regions: 8}} {
		f.Add(iloc.Print(rgen.Generate(rng, cfg)))
	}
	f.Add("routine k()\nentry:\n ldi r1, 7\n call g\n getret r2\n add r3, r1, r2\n retr r3\n")
	f.Add("routine k()\ndata a rw 8 = 1 2 3 4 5 6 7 8\nentry:\n lda r1, a\n load r2, r1\n loadai r3, r1, 8\n loadai r4, r1, 16\n add r5, r2, r3\n add r5, r5, r4\n retr r5\n")

	machines := []*target.Machine{target.Standard(), target.WithRegs(4)}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		rt, err := iloc.Parse(src)
		if err != nil {
			return
		}
		if iloc.Verify(rt, false) != nil {
			return
		}
		// Bound the virtual spaces and code size the fuzzer can demand:
		// a single "ldi r100000000, 1" line would otherwise make the
		// allocator's dense per-register tables the test's memory bill.
		if rt.NextReg[iloc.ClassInt] > 128 || rt.NextReg[iloc.ClassFlt] > 128 {
			t.Skip("virtual register space too large")
		}
		instrs, words := 0, 0
		rt.ForEachInstr(func(_ *iloc.Block, _ int, _ *iloc.Instr) { instrs++ })
		for _, d := range rt.Data {
			words += d.Words
		}
		if instrs > 1000 || words > 1<<16 {
			t.Skip("routine too large")
		}
		// CheckDefined needs CFG edges; run it on a clone so the input
		// handed to Allocate stays pristine.
		probe := rt.Clone()
		defined := cfg.Build(probe) == nil && cfg.CheckDefined(probe) == nil

		for _, m := range machines {
			res, err := Allocate(context.Background(), rt, Options{Machine: m, Mode: ModeRemat})
			if err != nil {
				// Even the spill-everywhere fallback refused: allowed,
				// but the failure must be a structured AllocError.
				var ae *AllocError
				if !errors.As(err, &ae) {
					t.Fatalf("%s: unstructured failure: %T %v", m.Name, err, err)
				}
				continue
			}
			if !defined {
				continue // input's own undefined uses would trip the checker
			}
			if verr := verify.Check(rt, res.Routine, m, verify.Options{}); verr != nil {
				t.Fatalf("%s: allocation rejected by verifier (degraded=%v): %v\ninput:\n%s\noutput:\n%s",
					m.Name, res.Degraded, verr, iloc.Print(rt), iloc.Print(res.Routine))
			}
		}
	})
}
