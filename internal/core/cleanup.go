package core

import (
	"repro/internal/cfg"
	"repro/internal/iloc"
)

// threadJumps retargets branches that point at empty jump-only blocks —
// the critical-edge landing pads whose split copies were coalesced or
// never materialized — and prunes the blocks once nothing reaches them.
// Without this, every allocation would pay one extra jmp per edge the
// allocator split, in both modes.
func (a *allocator) threadJumps() error {
	rt := a.rt
	// An empty block is a non-entry block holding exactly one jmp.
	hop := make(map[string]string)
	for _, b := range rt.Blocks[1:] {
		if len(b.Instrs) == 1 && b.Instrs[0].Op == iloc.OpJmp {
			hop[b.Label] = b.Instrs[0].Label
		}
	}
	if len(hop) == 0 {
		return nil
	}
	// Resolve chains of empty blocks; a cycle of empty jumps (an empty
	// infinite loop) resolves to itself and is left alone.
	final := func(l string) string {
		seen := map[string]bool{}
		for hop[l] != "" && !seen[l] {
			seen[l] = true
			l = hop[l]
		}
		return l
	}
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		switch in.Op {
		case iloc.OpJmp:
			in.Label = final(in.Label)
		case iloc.OpBr:
			in.Label = final(in.Label)
			in.Label2 = final(in.Label2)
		}
	})
	// Rebuilding the CFG prunes the now-unreachable empties.
	return cfg.Build(rt)
}
