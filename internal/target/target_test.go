package target

import (
	"strings"
	"testing"

	"repro/internal/iloc"
)

func TestValidateRejectsBadMachines(t *testing.T) {
	cases := []struct {
		name string
		m    *Machine
	}{
		{"zero regs", &Machine{Name: "z", Regs: [iloc.NumClasses]int{0, 0}, MemCycles: 2, OtherCycles: 1}},
		{"one reg (k=0)", &Machine{Name: "o", Regs: [iloc.NumClasses]int{1, 1}, MemCycles: 2, OtherCycles: 1}},
		{"negative regs", &Machine{Name: "n", Regs: [iloc.NumClasses]int{-4, -4}, MemCycles: 2, OtherCycles: 1}},
		{"two regs (k=1, spilled binops unusable)", WithRegs(2)},
		{"caller-save exceeds k", &Machine{Name: "cs", Regs: [iloc.NumClasses]int{4, 4}, CallerSave: 4, MemCycles: 2, OtherCycles: 1}},
		{"negative caller-save", &Machine{Name: "ncs", Regs: [iloc.NumClasses]int{4, 4}, CallerSave: -1, MemCycles: 2, OtherCycles: 1}},
		{"zero mem cycles", &Machine{Name: "mc", Regs: [iloc.NumClasses]int{4, 4}, CallerSave: 1, OtherCycles: 1}},
		{"zero other cycles", &Machine{Name: "oc", Regs: [iloc.NumClasses]int{4, 4}, CallerSave: 1, MemCycles: 2}},
		{"one class too small", &Machine{Name: "half", Regs: [iloc.NumClasses]int{16, 1}, CallerSave: 1, MemCycles: 2, OtherCycles: 1}},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted an unusable machine", tc.name)
		}
	}
}

// TestValidateErrorsAreDescriptive pins the validator's error stories:
// a rejected machine must say which class is short, or that the
// partition breaks — not just "invalid" — because the serving layer
// forwards these messages verbatim to clients asking for regs=N sweep
// points.
func TestValidateErrorsAreDescriptive(t *testing.T) {
	cases := []struct {
		m    *Machine
		want string
	}{
		{&Machine{Name: "k0", Regs: [iloc.NumClasses]int{1, 1}, MemCycles: 2, OtherCycles: 1}, "no allocatable registers"},
		{&Machine{Name: "k1", Regs: [iloc.NumClasses]int{2, 2}, MemCycles: 2, OtherCycles: 1}, "single color"},
		{&Machine{Name: "part", Regs: [iloc.NumClasses]int{4, 4}, CallerSave: 5, MemCycles: 2, OtherCycles: 1}, "callee-save partition"},
		{&Machine{Name: "ncs", Regs: [iloc.NumClasses]int{4, 4}, CallerSave: -2, MemCycles: 2, OtherCycles: 1}, "negative caller-save"},
		{&Machine{Name: "cost", Regs: [iloc.NumClasses]int{4, 4}, CallerSave: 1}, "cycle costs"},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.m.Name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.m.Name, err, tc.want)
		}
	}
}

// TestWithRegsDegenerate: degenerate register counts yield well-formed
// data that fails Validate — never a negative caller-save count that
// would corrupt partition arithmetic downstream.
func TestWithRegsDegenerate(t *testing.T) {
	for _, n := range []int{-4, -1, 0, 1, 2} {
		m := WithRegs(n)
		if m.CallerSave < 0 {
			t.Errorf("WithRegs(%d).CallerSave = %d, want >= 0", n, m.CallerSave)
		}
		if err := m.Validate(); err == nil {
			t.Errorf("WithRegs(%d) validated; k = %d", n, m.K(iloc.ClassInt))
		}
	}
}

func TestWithRegsRoundTripsThroughK(t *testing.T) {
	for _, n := range []int{3, 4, 6, 8, 16, 32, 128} {
		m := WithRegs(n)
		if err := m.Validate(); err != nil {
			t.Fatalf("WithRegs(%d): %v", n, err)
		}
		for c := iloc.Class(0); c < iloc.NumClasses; c++ {
			if m.Regs[c] != n {
				t.Errorf("WithRegs(%d).Regs[%d] = %d", n, c, m.Regs[c])
			}
			// Register 0 of each bank is reserved (the int bank's is the
			// frame pointer), so n registers yield n-1 colors.
			if got := m.K(c); got != n-1 {
				t.Errorf("WithRegs(%d).K(%d) = %d, want %d", n, c, got, n-1)
			}
			if m.CallerSave+m.CalleeSave(c) != m.K(c) {
				t.Errorf("WithRegs(%d): caller %d + callee %d != k %d",
					n, m.CallerSave, m.CalleeSave(c), m.K(c))
			}
		}
		if m.CallerSave < 1 {
			t.Errorf("WithRegs(%d): no caller-save colors; call tests need at least one", n)
		}
	}
}

func TestPresetsConsistent(t *testing.T) {
	std, huge := Standard(), Huge()
	for name, m := range map[string]*Machine{"standard": std, "huge": huge} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("%s preset named %q", name, m.Name)
		}
		if m.String() != name {
			t.Errorf("%s String() = %q", name, m.String())
		}
		// The paper's cost model: memory operations cost two cycles,
		// everything else one.
		if m.MemCycles != 2 || m.OtherCycles != 1 {
			t.Errorf("%s cycles = %d/%d, want 2/1", name, m.MemCycles, m.OtherCycles)
		}
		if got := m.Cycles(iloc.OpLoadai); got != m.MemCycles {
			t.Errorf("%s Cycles(loadai) = %d, want %d", name, got, m.MemCycles)
		}
		if got := m.Cycles(iloc.OpAdd); got != m.OtherCycles {
			t.Errorf("%s Cycles(add) = %d, want %d", name, got, m.OtherCycles)
		}
	}
	if std.Regs[iloc.ClassInt] != 16 || std.Regs[iloc.ClassFlt] != 16 {
		t.Errorf("standard machine regs = %v, want 16 per class", std.Regs)
	}
	if std.K(iloc.ClassInt) != 15 {
		t.Errorf("standard K = %d, want 15", std.K(iloc.ClassInt))
	}
	if huge.Regs[iloc.ClassInt] != 128 {
		t.Errorf("huge machine regs = %v, want 128 per class", huge.Regs)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := Standard()
	c := m.Clone()
	c.Name = "mutant"
	c.Regs[iloc.ClassInt] = 3
	c.CallerSave = 1
	if m.Name != "standard" || m.Regs[iloc.ClassInt] != 16 {
		t.Errorf("mutating a clone changed the original: %+v", m)
	}
}
