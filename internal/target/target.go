// Package target describes the machine the allocator colors for: the
// sizes of the two ILOC register banks, the calling convention's
// caller-/callee-save partition, and the paper's two-tier cycle cost
// model (memory operations cost MemCycles, everything else OtherCycles).
//
// The paper evaluates its allocator on two machine shapes — a "test
// machine" with sixteen registers per class whose loads and stores cost
// two cycles, and a 128-register "huge" machine that never spills and so
// serves as the zero-spill baseline for Table 1. Standard and Huge
// return those; WithRegs(n) builds the intermediate points the
// register-sweep experiments walk through.
//
// Register 0 of each class is reserved (the integer bank's register 0 is
// the frame pointer), so a bank of Regs[c] registers exposes
// K(c) = Regs[c]-1 allocatable colors, numbered 1..K. A call clobbers
// the low CallerSave colors of each class; live ranges that cross a call
// must take one of the remaining CalleeSave(c) colors or spill.
package target

import (
	"fmt"

	"repro/internal/iloc"
)

// Machine describes one register machine: bank sizes, the calling
// convention's register partition, and the cycle cost model.
//
// Values are plain data and may be constructed directly; Validate
// reports whether a hand-built machine is one the allocator can color
// for. The presets returned by Standard, Huge and WithRegs always
// validate.
type Machine struct {
	// Name identifies the machine in stats output and test failures.
	Name string

	// Regs[class] is the size of the register bank, including the
	// reserved register 0. Allocatable colors are 1..Regs[class]-1.
	Regs [iloc.NumClasses]int

	// CallerSave is the number of low colors (1..CallerSave) of each
	// class that a call clobbers. Colors above CallerSave are preserved
	// across calls (callee-save).
	CallerSave int

	// MemCycles is the cost of a memory operation (load, store) and
	// OtherCycles the cost of everything else — the paper's model, in
	// which a reload costs MemCycles but rematerializing an ldi costs
	// only OtherCycles.
	MemCycles   int
	OtherCycles int
}

// K returns the number of allocatable colors of a class: the bank size
// minus the reserved register 0.
func (m *Machine) K(c iloc.Class) int { return m.Regs[c] - 1 }

// CalleeSave returns the number of colors of a class that survive a
// call.
func (m *Machine) CalleeSave(c iloc.Class) int { return m.K(c) - m.CallerSave }

// Cycles prices one operation under the machine's cost model.
func (m *Machine) Cycles(op iloc.Op) int {
	if op.IsMem() {
		return m.MemCycles
	}
	return m.OtherCycles
}

// String returns the machine's name.
func (m *Machine) String() string { return m.Name }

// Clone returns a copy of the machine, so callers can derive variants
// without mutating a shared preset.
func (m *Machine) Clone() *Machine {
	c := *m
	return &c
}

// Validate checks that the machine is one the allocator can actually
// color for. Spilled binary operations need two register operands alive
// at once, so each class must expose at least two colors; the
// caller-save count must leave the partition well formed (a negative
// callee-save remainder would let the allocator hand out colors that do
// not survive the calls they are live across).
func (m *Machine) Validate() error {
	if m.CallerSave < 0 {
		return fmt.Errorf("target: %s: negative caller-save count %d", m.Name, m.CallerSave)
	}
	for c := iloc.Class(0); c < iloc.NumClasses; c++ {
		k := m.K(c)
		if k < 1 {
			return fmt.Errorf("target: %s: class %s has no allocatable registers (bank of %d leaves k = %d after the reserved register 0)", m.Name, c, m.Regs[c], k)
		}
		if k < 2 {
			return fmt.Errorf("target: %s: class %s has a single color; spilled code needs two registers at once", m.Name, c)
		}
		if m.CalleeSave(c) < 0 {
			return fmt.Errorf("target: %s: caller-save count %d exceeds the %d colors of class %s (callee-save partition would be %d)", m.Name, m.CallerSave, k, c, m.CalleeSave(c))
		}
	}
	if m.MemCycles <= 0 || m.OtherCycles <= 0 {
		return fmt.Errorf("target: %s: non-positive cycle costs (mem %d, other %d)", m.Name, m.MemCycles, m.OtherCycles)
	}
	return nil
}

// WithRegs returns a machine with n registers per class (n-1 colors; the
// register-sweep experiments walk n from tight to roomy). Half of each
// bank's colors are caller-save, mirroring a conventional convention's
// even scratch/preserved split.
//
// The result of a degenerate n is still well formed data — a bank too
// small to color (n < 3) fails Validate with a descriptive error rather
// than reaching the allocator, and a negative n never yields a negative
// caller-save count that would corrupt the partition arithmetic
// downstream.
func WithRegs(n int) *Machine {
	cs := (n - 1) / 2
	if cs < 0 {
		cs = 0
	}
	m := &Machine{
		Name:        fmt.Sprintf("regs-%d", n),
		CallerSave:  cs,
		MemCycles:   2,
		OtherCycles: 1,
	}
	for c := range m.Regs {
		m.Regs[c] = n
	}
	return m
}

// Standard returns the paper's test machine: sixteen registers per
// class, two-cycle memory operations.
func Standard() *Machine {
	m := WithRegs(16)
	m.Name = "standard"
	return m
}

// Huge returns the paper's 128-register baseline machine, on which no
// suite routine spills; Table 1 measures spill cost against it.
func Huge() *Machine {
	m := WithRegs(128)
	m.Name = "huge"
	return m
}
