package remat

import (
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/iloc"
	"repro/internal/liveness"
	"repro/internal/ssa"
)

func buildAndTag(t *testing.T, src string, c iloc.Class) (*iloc.Routine, *ssa.Graph, []Tag) {
	t.Helper()
	rt := iloc.MustParse(src)
	if err := cfg.Build(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.SplitCriticalEdges(rt); err != nil {
		t.Fatal(err)
	}
	tree := dom.Compute(rt)
	live := liveness.Compute(rt, c)
	g, err := ssa.Build(rt, c, tree, live)
	if err != nil {
		t.Fatal(err)
	}
	return rt, g, Propagate(g)
}

func TestMeetTable(t *testing.T) {
	i1 := iloc.MakeLdi(iloc.IntReg(1), 5)
	i2 := iloc.MakeLdi(iloc.IntReg(2), 5) // same op+imm, different dst
	i3 := iloc.MakeLdi(iloc.IntReg(3), 6)
	cases := []struct {
		a, b, want Tag
	}{
		{TopTag(), TopTag(), TopTag()},
		{TopTag(), BottomTag(), BottomTag()},
		{BottomTag(), TopTag(), BottomTag()},
		{TopTag(), InstTag(i1), InstTag(i1)},
		{InstTag(i1), TopTag(), InstTag(i1)},
		{InstTag(i1), BottomTag(), BottomTag()},
		{InstTag(i1), InstTag(i2), InstTag(i1)}, // equal instructions
		{InstTag(i1), InstTag(i3), BottomTag()}, // different immediates
		{BottomTag(), BottomTag(), BottomTag()},
	}
	for i, c := range cases {
		if got := Meet(c.a, c.b); !Equal(got, c.want) {
			t.Errorf("case %d: Meet(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestInstrEqual(t *testing.T) {
	lda1 := iloc.MakeLda(iloc.IntReg(1), "a")
	lda2 := iloc.MakeLda(iloc.IntReg(9), "a")
	lda3 := iloc.MakeLda(iloc.IntReg(1), "b")
	if !InstrEqual(lda1, lda2) {
		t.Fatal("same label lda must be equal")
	}
	if InstrEqual(lda1, lda3) {
		t.Fatal("different label lda must differ")
	}
	addiFP1 := iloc.MakeImm(iloc.OpAddi, iloc.IntReg(1), iloc.FP, 8)
	addiFP2 := iloc.MakeImm(iloc.OpAddi, iloc.IntReg(2), iloc.FP, 8)
	addiFP3 := iloc.MakeImm(iloc.OpAddi, iloc.IntReg(2), iloc.FP, 16)
	if !InstrEqual(addiFP1, addiFP2) || InstrEqual(addiFP1, addiFP3) {
		t.Fatal("fp-relative addi equality wrong")
	}
	if InstrEqual(lda1, addiFP1) {
		t.Fatal("different ops equal")
	}
	if InstrEqual(nil, lda1) || !InstrEqual(nil, nil) {
		t.Fatal("nil handling wrong")
	}
}

func TestNeverKilled(t *testing.T) {
	yes := []*iloc.Instr{
		iloc.MakeLdi(iloc.IntReg(1), 5),
		iloc.MakeFldi(iloc.FltReg(1), 2.5),
		iloc.MakeLda(iloc.IntReg(1), "tab"),
		iloc.MakeImm(iloc.OpAddi, iloc.IntReg(1), iloc.FP, 8),
		iloc.MakeImm(iloc.OpSubi, iloc.IntReg(1), iloc.FP, 8),
		{Op: iloc.OpRload, Dst: iloc.IntReg(1), Label: "t", Imm: 0},
		{Op: iloc.OpGetparam, Dst: iloc.IntReg(1), Imm: 0},
		{Op: iloc.OpFgetparam, Dst: iloc.FltReg(1), Imm: 1},
		iloc.MakeMov(iloc.IntReg(1), iloc.FP), // copy of fp
	}
	for _, in := range yes {
		if !NeverKilled(in) {
			t.Errorf("%s should be never-killed", in)
		}
	}
	no := []*iloc.Instr{
		iloc.MakeImm(iloc.OpAddi, iloc.IntReg(1), iloc.IntReg(2), 8), // varying operand
		iloc.MakeBin(iloc.OpAdd, iloc.IntReg(1), iloc.IntReg(2), iloc.IntReg(3)),
		iloc.MakeUn(iloc.OpLoad, iloc.IntReg(1), iloc.FP), // plain load, even fp-based
		iloc.MakeMov(iloc.IntReg(1), iloc.IntReg(2)),      // ordinary copy: ⊤ initially
	}
	for _, in := range no {
		if NeverKilled(in) {
			t.Errorf("%s must not be never-killed", in)
		}
	}
}

// The Figure 1 example: p's live range has three values — lda (inst),
// p+8 (⊥) and their φ merge (⊥).
func TestFig1Tags(t *testing.T) {
	_, g, tags := buildAndTag(t, `
routine fig1(r9)
data arr rw 64
data lab ro 8 = 42
entry:
    getparam r9, 0
    lda r1, lab
    fldi f1, 0.0
    ldi r2, 0
    jmp loop1
loop1:
    fload f2, r1
    fadd f1, f1, f2
    addi r2, r2, 1
    sub r3, r9, r2
    br gt r3, loop1, mid
mid:
    ldi r4, 0
    jmp loop2
loop2:
    fload f3, r1
    fadd f1, f1, f3
    addi r1, r1, 8
    addi r4, r4, 1
    sub r5, r9, r4
    br gt r5, loop2, done
done:
    retf f1
`, iloc.ClassInt)

	var ldaVal, addiPVal, phiPVal int
	for v := 1; v < g.NumValues; v++ {
		d := g.DefOf[v]
		switch {
		case d.Op == iloc.OpLda:
			ldaVal = v
		case d.Op == iloc.OpAddi && d.Imm == 8:
			addiPVal = v
		case d.Op == iloc.OpPhi && g.OrigOf[v] == 1:
			phiPVal = v
		}
	}
	if ldaVal == 0 || addiPVal == 0 || phiPVal == 0 {
		t.Fatal("could not locate p's three values")
	}
	if tags[ldaVal].Kind != Inst {
		t.Errorf("lda value tag = %v, want inst", tags[ldaVal])
	}
	if tags[addiPVal].Kind != Bottom {
		t.Errorf("p+8 value tag = %v, want ⊥", tags[addiPVal])
	}
	if tags[phiPVal].Kind != Bottom {
		t.Errorf("φ(p) tag = %v, want ⊥", tags[phiPVal])
	}
	// The getparam value is never-killed.
	for v := 1; v < g.NumValues; v++ {
		if g.DefOf[v].Op == iloc.OpGetparam && tags[v].Kind != Inst {
			t.Errorf("getparam tag = %v, want inst", tags[v])
		}
	}
	// No value remains ⊤.
	for v := 1; v < g.NumValues; v++ {
		if tags[v].Kind == Top {
			t.Errorf("value %d stuck at ⊤ (%s)", v, g.DefOf[v])
		}
	}
}

// A φ merging two loads of the same immediate is itself never-killed.
func TestPhiOfEqualInstsIsInst(t *testing.T) {
	_, g, tags := buildAndTag(t, `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, a, b
a:
    ldi r2, 7
    jmp join
b:
    ldi r2, 7
    jmp join
join:
    retr r2
`, iloc.ClassInt)
	for v := 1; v < g.NumValues; v++ {
		if g.DefOf[v].Op == iloc.OpPhi {
			if tags[v].Kind != Inst {
				t.Fatalf("φ of two ldi 7 = %v, want inst", tags[v])
			}
			if tags[v].Instr.Imm != 7 {
				t.Fatal("wrong remat instruction")
			}
			return
		}
	}
	t.Fatal("no φ found")
}

func TestPhiOfDifferentInstsIsBottom(t *testing.T) {
	_, g, tags := buildAndTag(t, `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, a, b
a:
    ldi r2, 7
    jmp join
b:
    ldi r2, 8
    jmp join
join:
    retr r2
`, iloc.ClassInt)
	for v := 1; v < g.NumValues; v++ {
		if g.DefOf[v].Op == iloc.OpPhi {
			if tags[v].Kind != Bottom {
				t.Fatalf("φ of ldi 7/ldi 8 = %v, want ⊥", tags[v])
			}
			return
		}
	}
	t.Fatal("no φ found")
}

// Copies take the tag of their source, through chains.
func TestCopyChainPropagation(t *testing.T) {
	_, g, tags := buildAndTag(t, `
routine f()
data tab ro 4
entry:
    lda r1, tab
    mov r2, r1
    mov r3, r2
    load r4, r3
    mov r5, r4
    retr r5
`, iloc.ClassInt)
	for v := 1; v < g.NumValues; v++ {
		d := g.DefOf[v]
		want := Inst
		if d.Op == iloc.OpLoad || (d.Op == iloc.OpMov && d.Src[0].N == 4) {
			want = Bottom
		}
		if d.Op == iloc.OpMov && g.OrigOf[v] == 5 {
			want = Bottom // copy of the loaded value
		}
		if tags[v].Kind != want {
			t.Errorf("value %d (%s): tag %v, want kind %d", v, d, tags[v], want)
		}
	}
	_ = g
}

// Loop-carried φ where the body redefines the value with the same
// never-killed instruction: stays inst around the cycle.
func TestLoopCarriedEqualInst(t *testing.T) {
	_, g, tags := buildAndTag(t, `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 5
    ldi r3, 0
    jmp loop
loop:
    add r5, r2, r3    ; r2 upward-exposed: live around the loop
    addi r3, r3, 1
    ldi r2, 5         ; redefined with the same never-killed instruction
    sub r4, r1, r3
    br gt r4, loop, done
done:
    retr r5
`, iloc.ClassInt)
	for v := 1; v < g.NumValues; v++ {
		if g.DefOf[v].Op == iloc.OpPhi && g.OrigOf[v] == 2 {
			if tags[v].Kind != Inst {
				t.Fatalf("φ(ldi5, ldi5) = %v, want inst", tags[v])
			}
			return
		}
	}
	// The φ for r2 may be pruned if liveness says it is dead; it is not.
	t.Fatal("φ for r2 not found")
}

func TestTagString(t *testing.T) {
	if TopTag().String() != "⊤" || BottomTag().String() != "⊥" {
		t.Fatal("lattice extremes print wrong")
	}
	s := InstTag(iloc.MakeLdi(iloc.IntReg(3), 42)).String()
	if s != "inst(ldi 42)" {
		t.Fatalf("inst tag string = %q", s)
	}
}

func TestRematerializable(t *testing.T) {
	if TopTag().Rematerializable() || BottomTag().Rematerializable() {
		t.Fatal("⊤/⊥ are not rematerializable")
	}
	if !InstTag(iloc.MakeLdi(iloc.IntReg(1), 0)).Rematerializable() {
		t.Fatal("inst tag is rematerializable")
	}
}

// randomTag builds an arbitrary lattice element from quick's raw values.
func randomTag(kind uint8, op uint8, imm int64) Tag {
	switch kind % 3 {
	case 0:
		return TopTag()
	case 1:
		return BottomTag()
	default:
		ops := []*iloc.Instr{
			iloc.MakeLdi(iloc.IntReg(1), imm%5),
			iloc.MakeFldi(iloc.FltReg(1), float64(imm%3)),
			iloc.MakeLda(iloc.IntReg(1), "t"),
			iloc.MakeImm(iloc.OpAddi, iloc.IntReg(1), iloc.FP, imm%7),
		}
		return InstTag(ops[int(op)%len(ops)])
	}
}

// Lattice laws: meet is commutative, associative, idempotent; ⊤ is the
// identity and ⊥ the absorbing element.
func TestQuickMeetLatticeLaws(t *testing.T) {
	f := func(k1, o1 uint8, i1 int64, k2, o2 uint8, i2 int64, k3, o3 uint8, i3 int64) bool {
		a, b, c := randomTag(k1, o1, i1), randomTag(k2, o2, i2), randomTag(k3, o3, i3)
		if !Equal(Meet(a, b), Meet(b, a)) {
			return false
		}
		if !Equal(Meet(Meet(a, b), c), Meet(a, Meet(b, c))) {
			return false
		}
		if !Equal(Meet(a, a), a) {
			return false
		}
		if !Equal(Meet(a, TopTag()), a) {
			return false
		}
		return Meet(a, BottomTag()).Kind == Bottom
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity: meeting with anything never raises the lattice level.
func TestQuickMeetMonotone(t *testing.T) {
	level := func(x Tag) int { return int(x.Kind) } // Top=0 < Inst=1 < Bottom=2
	f := func(k1, o1 uint8, i1 int64, k2, o2 uint8, i2 int64) bool {
		a, b := randomTag(k1, o1, i1), randomTag(k2, o2, i2)
		m := Meet(a, b)
		return level(m) >= level(a) && level(m) >= level(b) || m.Kind == Bottom
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
