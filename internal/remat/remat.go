// Package remat implements the rematerialization-tag lattice of §3.2 of
// the paper and its sparse propagation over the SSA graph — the analog of
// Wegman and Zadeck's sparse simple constant algorithm with the modified
// meet:
//
//	any  ⊓ ⊤     = any
//	any  ⊓ ⊥     = ⊥
//	inst ⊓ inst' = inst  if inst = inst' (operand-by-operand)
//	inst ⊓ inst' = ⊥     otherwise
//
// A value tagged with an instruction is never-killed: it can be
// recomputed anywhere by issuing that instruction, because its operands
// (immediates, labels, the reserved frame pointer) are available
// throughout the procedure. A value tagged ⊥ needs a full store/reload
// spill.
package remat

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/iloc"
	"repro/internal/ssa"
)

// Kind is the lattice level of a tag.
type Kind uint8

// Lattice levels.
const (
	Top    Kind = iota // no information yet (copies and φ-nodes start here)
	Inst               // never-killed; rematerialize with Tag.Instr
	Bottom             // must be spilled and restored
)

// Tag is a lattice element. The zero Tag is ⊤.
type Tag struct {
	Kind  Kind
	Instr *iloc.Instr // defining instruction when Kind == Inst
}

// TopTag, BottomTag and InstTag construct lattice elements.
func TopTag() Tag                { return Tag{Kind: Top} }
func BottomTag() Tag             { return Tag{Kind: Bottom} }
func InstTag(in *iloc.Instr) Tag { return Tag{Kind: Inst, Instr: in} }

// Rematerializable reports whether the tag allows rematerialization.
func (t Tag) Rematerializable() bool { return t.Kind == Inst }

func (t Tag) String() string {
	switch t.Kind {
	case Top:
		return "⊤"
	case Bottom:
		return "⊥"
	default:
		return fmt.Sprintf("inst(%s)", stripDst(t.Instr))
	}
}

func stripDst(in *iloc.Instr) string {
	var parts []string
	for i := 0; i < in.Op.NSrc(); i++ {
		parts = append(parts, in.Src[i].String())
	}
	if in.Op.HasLabel() {
		parts = append(parts, in.Label)
	}
	if in.Op.HasImm() {
		parts = append(parts, strconv.FormatInt(in.Imm, 10))
	}
	if in.Op.HasFImm() {
		parts = append(parts, strconv.FormatFloat(in.FImm, 'g', -1, 64))
	}
	if len(parts) == 0 {
		return in.Op.String()
	}
	return in.Op.String() + " " + strings.Join(parts, ", ")
}

// InstrEqual compares two defining instructions operand by operand, as the
// paper's meet requires. The destination register is ignored: two ldi of
// the same constant into different values are the same rematerialization.
func InstrEqual(a, b *iloc.Instr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Op != b.Op {
		return false
	}
	for i := 0; i < a.Op.NSrc(); i++ {
		if a.Src[i] != b.Src[i] {
			return false
		}
	}
	return a.Imm == b.Imm && a.FImm == b.FImm && a.Label == b.Label
}

// Equal reports whether two tags are the same lattice element.
func Equal(a, b Tag) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind != Inst {
		return true
	}
	return InstrEqual(a.Instr, b.Instr)
}

// Meet is the modified meet operation of §3.2.
func Meet(a, b Tag) Tag {
	switch {
	case a.Kind == Top:
		return b
	case b.Kind == Top:
		return a
	case a.Kind == Bottom || b.Kind == Bottom:
		return BottomTag()
	case InstrEqual(a.Instr, b.Instr):
		return a
	default:
		return BottomTag()
	}
}

// NeverKilled reports whether the instruction defines a never-killed
// value: it is in the rematerializable opcode class and every register
// operand is the reserved frame pointer (always available). A copy from
// fp also qualifies — it recomputes in one instruction from an
// always-available operand.
func NeverKilled(in *iloc.Instr) bool {
	if in.Op.IsCopy() {
		return in.Op.NSrc() == 1 && in.Src[0].IsFP()
	}
	if !in.Op.RematCandidate() {
		return false
	}
	for i := 0; i < in.Op.NSrc(); i++ {
		if !in.Src[i].IsFP() {
			return false
		}
	}
	return true
}

// InitialTag gives a value's tag before propagation, from its defining
// instruction: ⊤ for copies and φ-nodes, inst for never-killed
// instructions, ⊥ for everything else (§3.2).
func InitialTag(in *iloc.Instr) Tag {
	switch {
	case in.Op == iloc.OpPhi:
		return TopTag()
	case NeverKilled(in):
		return InstTag(in)
	case in.Op.IsCopy():
		return TopTag()
	default:
		return BottomTag()
	}
}

// Propagate runs the sparse propagation over the SSA value graph and
// returns the final tag of every value (indexed by value number; index 0
// is ⊤ and unused). On a well-formed graph every value ends at Inst or ⊥.
func Propagate(g *ssa.Graph) []Tag {
	tags := make([]Tag, g.NumValues)
	var work []int

	// evaluate recomputes the tag of the value defined by in.
	evaluate := func(v int) Tag {
		in := g.DefOf[v]
		switch {
		case in.Op == iloc.OpPhi:
			t := TopTag()
			for _, a := range in.Phi.Args {
				t = Meet(t, tags[a.N])
			}
			return t
		case in.Op.IsCopy():
			if NeverKilled(in) {
				return InstTag(in)
			}
			return tags[in.Src[0].N]
		default:
			return InitialTag(in)
		}
	}

	for v := 1; v < g.NumValues; v++ {
		tags[v] = InitialTag(g.DefOf[v])
		if tags[v].Kind != Top {
			work = append(work, v)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, use := range g.UsesOf[v] {
			if use.Op != iloc.OpPhi && !use.Op.IsCopy() {
				continue
			}
			w := use.Dst.N
			if g.DefOf[w] != use {
				continue // the use is a copy source feeding a different value? impossible in SSA, but be safe
			}
			nt := evaluate(w)
			if !Equal(nt, tags[w]) {
				tags[w] = Meet(tags[w], nt) // monotone: only ever lower
				work = append(work, w)
			}
		}
	}
	return tags
}
