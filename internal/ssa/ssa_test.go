package ssa

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/iloc"
	"repro/internal/liveness"
)

func buildSSA(t *testing.T, src string, c iloc.Class) (*iloc.Routine, *Graph) {
	t.Helper()
	rt := iloc.MustParse(src)
	if err := cfg.Build(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.SplitCriticalEdges(rt); err != nil {
		t.Fatal(err)
	}
	tree := dom.Compute(rt)
	live := liveness.Compute(rt, c)
	g, err := Build(rt, c, tree, live)
	if err != nil {
		t.Fatal(err)
	}
	if err := iloc.Verify(rt, true); err != nil {
		t.Fatalf("post-SSA verify: %v\n%s", err, iloc.Print(rt))
	}
	return rt, g
}

func countPhis(rt *iloc.Routine) int {
	n := 0
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if in.Op == iloc.OpPhi {
			n++
		}
	})
	return n
}

// The paper's Figure 1/3 example: p is constant in the first loop and
// varying in the second; SSA should create exactly one φ for p, at the
// head of the second loop.
const fig1Src = `
routine fig1(r9)
data arr rw 64
data lab ro 8 = 42
entry:
    getparam r9, 0
    lda r1, lab       ; p <- Label
    fldi f1, 0.0
    ldi r2, 0
    jmp loop1
loop1:
    fload f2, r1      ; y <- y + [p]
    fadd f1, f1, f2
    addi r2, r2, 1
    sub r3, r9, r2
    br gt r3, loop1, mid
mid:
    ldi r4, 0
    jmp loop2
loop2:
    fload f3, r1      ; y <- y + [p]
    fadd f1, f1, f3
    addi r1, r1, 8    ; p <- p + 1 (words)
    addi r4, r4, 1
    sub r5, r9, r4
    br gt r5, loop2, done
done:
    retf f1
`

func TestFig1PhiPlacement(t *testing.T) {
	rt, g := buildSSA(t, fig1Src, iloc.ClassInt)
	// φs for int class: p at loop2 head; r2 at loop1 head; r4 at loop2 head.
	var phiBlocks []string
	rt.ForEachInstr(func(b *iloc.Block, _ int, in *iloc.Instr) {
		if in.Op == iloc.OpPhi {
			phiBlocks = append(phiBlocks, b.Label)
		}
	})
	// loop1: φ for r2 (loop counter). loop2: φ for p (r1) and r4.
	want := map[string]int{"loop1": 1, "loop2": 2}
	got := map[string]int{}
	for _, l := range phiBlocks {
		got[l]++
	}
	for l, n := range want {
		if got[l] != n {
			t.Errorf("φ count at %s = %d, want %d (all: %v)", l, got[l], n, phiBlocks)
		}
	}
	if len(phiBlocks) != 3 {
		t.Errorf("total φs = %d, want 3", len(phiBlocks))
	}
	// No φ for p at loop1's head: p is not redefined before it.
	loop1 := rt.BlockByLabel("loop1")
	for _, in := range loop1.Instrs {
		if in.Op == iloc.OpPhi && g.OrigOf[in.Dst.N] == 1 {
			t.Error("p must not get a φ at loop1 (single reaching def)")
		}
	}
}

func TestSingleAssignmentProperty(t *testing.T) {
	for _, c := range []iloc.Class{iloc.ClassInt, iloc.ClassFlt} {
		rt, g := buildSSA(t, fig1Src, c)
		defs := map[int]int{}
		rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
			if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
				defs[d.N]++
			}
		})
		for v, n := range defs {
			if n != 1 {
				t.Errorf("class %v value %d has %d defs", c, v, n)
			}
		}
		if len(defs) != g.NumValues-1 {
			t.Errorf("class %v: %d defs for %d values", c, len(defs), g.NumValues-1)
		}
	}
}

func TestDefUseChains(t *testing.T) {
	rt, g := buildSSA(t, fig1Src, iloc.ClassInt)
	// Every use in the code must be recorded, and every recorded use real.
	count := map[int]int{}
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		for _, u := range in.Uses() {
			if u.Class == iloc.ClassInt && u.N != 0 {
				count[u.N]++
			}
		}
	})
	for v := 1; v < g.NumValues; v++ {
		if len(g.UsesOf[v]) != count[v] {
			t.Errorf("value %d: chain has %d uses, code has %d", v, len(g.UsesOf[v]), count[v])
		}
		if g.DefOf[v] == nil || g.DefBlockOf[v] == nil {
			t.Errorf("value %d has no def record", v)
		}
	}
}

func TestPrunedNoDeadPhis(t *testing.T) {
	// r2 dies before the join; a pruned SSA must not insert a φ for it.
	rt, _ := buildSSA(t, `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, a, b
a:
    ldi r2, 1
    storeai r2, fp, 0
    jmp join
b:
    ldi r2, 2
    storeai r2, fp, 0
    jmp join
join:
    retr r1
`, iloc.ClassInt)
	if n := countPhis(rt); n != 0 {
		t.Fatalf("dead φ inserted: %d φs\n%s", n, iloc.Print(rt))
	}
}

func TestLivePhiInserted(t *testing.T) {
	rt, g := buildSSA(t, `
routine f(r1)
entry:
    getparam r1, 0
    br gt r1, a, b
a:
    ldi r2, 1
    jmp join
b:
    ldi r2, 2
    jmp join
join:
    retr r2
`, iloc.ClassInt)
	if n := countPhis(rt); n != 1 {
		t.Fatalf("φs = %d, want 1", n)
	}
	join := rt.BlockByLabel("join")
	phi := join.Instrs[0]
	if phi.Op != iloc.OpPhi {
		t.Fatal("φ not at head of join")
	}
	if len(phi.Phi.Args) != 2 {
		t.Fatalf("φ arity = %d", len(phi.Phi.Args))
	}
	// Arguments must be the two distinct values from the arms.
	a0, a1 := phi.Phi.Args[0].N, phi.Phi.Args[1].N
	if a0 == a1 {
		t.Fatal("φ args should differ")
	}
	if g.DefOf[a0].Op != iloc.OpLdi || g.DefOf[a1].Op != iloc.OpLdi {
		t.Fatal("φ args should be the ldi values")
	}
	// The return must use the φ result.
	ret := join.Instrs[len(join.Instrs)-1]
	if ret.Src[0].N != phi.Dst.N {
		t.Fatalf("retr uses %v, want φ result %v", ret.Src[0], phi.Dst)
	}
}

func TestUseOfUndefinedRegister(t *testing.T) {
	rt := iloc.MustParse(`
routine f()
entry:
    retr r1
`)
	if err := cfg.Build(rt); err != nil {
		t.Fatal(err)
	}
	tree := dom.Compute(rt)
	live := liveness.Compute(rt, iloc.ClassInt)
	if _, err := Build(rt, iloc.ClassInt, tree, live); err == nil {
		t.Fatal("use of undefined register not reported")
	}
}

func TestLoopCarriedPhiArgs(t *testing.T) {
	rt, g := buildSSA(t, `
routine f(r1)
entry:
    getparam r1, 0
    ldi r2, 0
    jmp loop
loop:
    addi r2, r2, 1
    sub r3, r1, r2
    br gt r3, loop.x.loop, done
loop.x.loop:
    jmp loop
done:
    retr r2
`, iloc.ClassInt)
	// One φ for r2 at loop head (r1 has one def; r3 dead across loop head).
	loop := rt.BlockByLabel("loop")
	var phi *iloc.Instr
	for _, in := range loop.Instrs {
		if in.Op == iloc.OpPhi {
			if phi != nil {
				t.Fatal("more than one φ at loop")
			}
			phi = in
		}
	}
	if phi == nil {
		t.Fatal("no φ at loop head")
	}
	// One arg comes from entry's ldi, the other from the addi in the loop.
	ops := map[iloc.Op]bool{}
	for _, a := range phi.Phi.Args {
		ops[g.DefOf[a.N].Op] = true
	}
	if !ops[iloc.OpLdi] || !ops[iloc.OpAddi] {
		t.Fatalf("φ args come from %v, want ldi+addi", ops)
	}
}

func TestOtherClassUntouched(t *testing.T) {
	rt, _ := buildSSA(t, fig1Src, iloc.ClassInt)
	// Float registers keep their original numbers after int-class SSA.
	seen := map[int]bool{}
	rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
		if d := in.Def(); d.Valid() && d.Class == iloc.ClassFlt {
			seen[d.N] = true
		}
	})
	for _, want := range []int{1, 2, 3} {
		if !seen[want] {
			t.Fatalf("float register f%d disappeared: %v", want, seen)
		}
	}
}
