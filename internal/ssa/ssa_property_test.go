package ssa_test

import (
	"math/rand"
	"testing"

	"repro/internal/cfg"
	"repro/internal/dom"
	"repro/internal/iloc"
	"repro/internal/liveness"
	"repro/internal/rgen"
	"repro/internal/ssa"
)

// buildRandomSSA converts a random program to SSA for one class.
func buildRandomSSA(t *testing.T, seed int64, c iloc.Class) (*iloc.Routine, *ssa.Graph, *dom.Tree) {
	t.Helper()
	rt := rgen.Generate(rand.New(rand.NewSource(seed)), rgen.Config{Regions: 5})
	if err := cfg.Build(rt); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.SplitCriticalEdges(rt); err != nil {
		t.Fatal(err)
	}
	tree := dom.Compute(rt)
	var lives [iloc.NumClasses]*liveness.Info
	for cl := iloc.Class(0); cl < iloc.NumClasses; cl++ {
		lives[cl] = liveness.Compute(rt, cl)
	}
	g, err := ssa.Build(rt, c, tree, lives[c])
	if err != nil {
		t.Fatalf("seed %d: %v\n%s", seed, err, iloc.Print(rt))
	}
	return rt, g, tree
}

// Property: single assignment — every value has exactly one definition.
func TestPropertySingleAssignment(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, c := range []iloc.Class{iloc.ClassInt, iloc.ClassFlt} {
			rt, g, _ := buildRandomSSA(t, seed, c)
			defs := make([]int, g.NumValues)
			rt.ForEachInstr(func(_ *iloc.Block, _ int, in *iloc.Instr) {
				if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
					defs[d.N]++
				}
			})
			for v := 1; v < g.NumValues; v++ {
				if defs[v] != 1 {
					t.Fatalf("seed %d class %v: value %d has %d defs", seed, c, v, defs[v])
				}
			}
		}
	}
}

// Property: strictness — every non-φ use is dominated by its definition,
// and every φ argument's definition dominates the corresponding
// predecessor block.
func TestPropertyUsesDominatedByDefs(t *testing.T) {
	for seed := int64(20); seed < 40; seed++ {
		c := iloc.ClassInt
		rt, g, tree := buildRandomSSA(t, seed, c)
		// Recompute def blocks from the rewritten code.
		defBlock := make([]*iloc.Block, g.NumValues)
		rt.ForEachInstr(func(b *iloc.Block, _ int, in *iloc.Instr) {
			if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
				defBlock[d.N] = b
			}
		})
		rt.ForEachInstr(func(b *iloc.Block, _ int, in *iloc.Instr) {
			if in.Op == iloc.OpPhi {
				if in.Dst.Class != c {
					return
				}
				for i, a := range in.Phi.Args {
					if a.N == 0 {
						continue
					}
					pred := b.Preds[i]
					if db := defBlock[a.N]; db != nil && !tree.Dominates(db.Index, pred.Index) {
						t.Fatalf("seed %d: φ arg v%d def in %s does not dominate pred %s",
							seed, a.N, db.Label, pred.Label)
					}
				}
				return
			}
			for _, u := range in.Uses() {
				if u.Class != c || u.N == 0 {
					continue
				}
				if db := defBlock[u.N]; db != nil && !tree.Dominates(db.Index, b.Index) {
					t.Fatalf("seed %d: use of v%d in %s not dominated by def in %s",
						seed, u.N, b.Label, db.Label)
				}
			}
		})
	}
}

// Property: pruning — every φ result is live (has at least one use, or
// feeds another φ transitively; in a pruned SSA no φ is trivially dead).
func TestPropertyPrunedPhisAreUsed(t *testing.T) {
	for seed := int64(40); seed < 55; seed++ {
		_, g, _ := buildRandomSSA(t, seed, iloc.ClassInt)
		for v := 1; v < g.NumValues; v++ {
			if g.DefOf[v].Op == iloc.OpPhi && len(g.UsesOf[v]) == 0 {
				t.Fatalf("seed %d: dead φ value %d survived pruning", seed, v)
			}
		}
	}
}
