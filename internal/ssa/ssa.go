// Package ssa builds the pruned static single assignment form of one
// register class of an ILOC routine: φ-nodes are inserted on the iterated
// dominance frontiers of definition sites, but only where the original
// register is live (dead φ-nodes are never created), and a walk over the
// dominator tree renames every definition to a fresh register number.
//
// After Build, each register number of the class identifies a *value* in
// the paper's sense: one definition (an instruction or a φ-node) plus its
// uses. Renumber unions these values back into live ranges after tag
// propagation.
package ssa

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/iloc"
	"repro/internal/liveness"
)

// Graph is the SSA value graph for one register class. Values are
// register numbers in [1, NumValues); index 0 is the reserved register.
type Graph struct {
	Class     iloc.Class
	NumValues int

	// DefOf[v] is the instruction defining value v (possibly a φ);
	// DefBlockOf[v] is its block. Index 0 is nil.
	DefOf      []*iloc.Instr
	DefBlockOf []*iloc.Block

	// UsesOf[v] lists the instructions that read value v (φ-nodes
	// included); the sparse propagation worklist follows these edges.
	UsesOf [][]*iloc.Instr

	// OrigOf[v] is the register number the value had before renaming.
	OrigOf []int
}

// Build converts the class-c registers of rt to pruned SSA in place and
// returns the value graph. Critical edges must already be split and the
// CFG built; live is the pre-SSA liveness solution for the class and tree
// the dominator tree.
func Build(rt *iloc.Routine, c iloc.Class, tree *dom.Tree, live *liveness.Info) (*Graph, error) {
	df := dom.Frontiers(tree, rt)
	nOrig := rt.NumRegs(c)

	// Definition sites per original register.
	defBlocks := make([][]*iloc.Block, nOrig)
	for _, b := range rt.Blocks {
		for _, in := range b.Instrs {
			if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
				defBlocks[d.N] = append(defBlocks[d.N], b)
			}
		}
	}

	// Insert pruned φ-nodes. phiOrig remembers which original register a
	// φ merges, for the renaming walk.
	phiOrig := make(map[*iloc.Instr]int)
	for v := 1; v < nOrig; v++ {
		if len(defBlocks[v]) == 0 {
			continue
		}
		hasPhi := make([]bool, len(rt.Blocks))
		work := append([]*iloc.Block(nil), defBlocks[v]...)
		inWork := make([]bool, len(rt.Blocks))
		for _, b := range work {
			inWork[b.Index] = true
		}
		for len(work) > 0 {
			d := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fi := range df[d.Index] {
				f := rt.Blocks[fi]
				if hasPhi[fi] || !live.LiveIn[fi].Has(v) {
					continue // pruning: dead φ never inserted
				}
				hasPhi[fi] = true
				phi := &iloc.Instr{
					Op:  iloc.OpPhi,
					Dst: iloc.Reg{Class: c, N: v},
					Phi: &iloc.Phi{Args: make([]iloc.Reg, len(f.Preds))},
				}
				for i := range phi.Phi.Args {
					phi.Phi.Args[i] = iloc.Reg{Class: c, N: v}
				}
				f.InsertBefore(0, phi)
				phiOrig[phi] = v
				if !inWork[fi] {
					inWork[fi] = true
					work = append(work, f)
				}
			}
		}
	}

	// Rename over the dominator tree.
	g := &Graph{
		Class:      c,
		DefOf:      []*iloc.Instr{nil},
		DefBlockOf: []*iloc.Block{nil},
		OrigOf:     []int{0},
	}
	stacks := make([][]int, nOrig)
	newName := func(orig int, def *iloc.Instr, b *iloc.Block) int {
		v := len(g.DefOf)
		g.DefOf = append(g.DefOf, def)
		g.DefBlockOf = append(g.DefBlockOf, b)
		g.OrigOf = append(g.OrigOf, orig)
		stacks[orig] = append(stacks[orig], v)
		return v
	}
	var renameErr error
	top := func(orig int, where string) int {
		st := stacks[orig]
		if len(st) == 0 {
			if renameErr == nil {
				renameErr = fmt.Errorf("ssa: use of undefined register %s%d at %s",
					map[iloc.Class]string{iloc.ClassInt: "r", iloc.ClassFlt: "f"}[c], orig, where)
			}
			return 0
		}
		return st[len(st)-1]
	}

	var walk func(bi int)
	walk = func(bi int) {
		b := rt.Blocks[bi]
		var popped []int
		for _, in := range b.Instrs {
			if in.Op == iloc.OpPhi {
				if in.Dst.Class != c {
					continue
				}
				orig := phiOrig[in]
				in.Dst = iloc.Reg{Class: c, N: newName(orig, in, b)}
				popped = append(popped, orig)
				continue
			}
			for i := range in.Src[:in.Op.NSrc()] {
				if in.Src[i].Class == c && in.Src[i].N != 0 {
					in.Src[i] = iloc.Reg{Class: c, N: top(in.Src[i].N, b.Label)}
				}
			}
			if d := in.Def(); d.Valid() && d.Class == c && d.N != 0 {
				orig := d.N
				in.Dst = iloc.Reg{Class: c, N: newName(orig, in, b)}
				popped = append(popped, orig)
			}
		}
		for _, s := range b.Succs {
			pi := s.PredIndex(b)
			for _, in := range s.Instrs {
				if in.Op != iloc.OpPhi {
					break
				}
				if in.Dst.Class != c {
					continue
				}
				orig := in.Phi.Args[pi].N
				if v, named := phiOrig[in]; named {
					orig = v
				}
				in.Phi.Args[pi] = iloc.Reg{Class: c, N: top(orig, s.Label+"(φ)")}
			}
		}
		for _, child := range tree.Children[bi] {
			walk(child)
		}
		for _, orig := range popped {
			stacks[orig] = stacks[orig][:len(stacks[orig])-1]
		}
	}
	walk(rt.Entry().Index)
	if renameErr != nil {
		return nil, renameErr
	}

	g.NumValues = len(g.DefOf)
	rt.NextReg[c] = g.NumValues

	// Def-use chains.
	g.UsesOf = make([][]*iloc.Instr, g.NumValues)
	for _, b := range rt.Blocks {
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				if u.Class == c && u.N != 0 {
					g.UsesOf[u.N] = append(g.UsesOf[u.N], in)
				}
			}
		}
	}
	return g, nil
}
