# Tier-1 verification: formatting, vet, build, tests. CI and the README
# both point here; `make check` must pass before merging.

GO ?= go

.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .
