# Tier-1 verification: formatting, vet, build, tests. CI and the README
# both point here; `make check` must pass before merging, and `make ci`
# mirrors .github/workflows/ci.yml step for step.

GO ?= go

.PHONY: check ci fmt vet build test race verify fuzz smoke-server smoke-store smoke-cluster smoke-jobs smoke-strategies smoke-corpus bench bench-server bench-cluster benchdiff benchdiff-soft

check: fmt vet build test race verify fuzz smoke-strategies smoke-server smoke-store smoke-cluster smoke-jobs smoke-corpus

# ci runs exactly what .github/workflows/ci.yml runs, in the same
# order: the gates, the fuzz smoke, the strategy-matrix smoke, the
# serving smoke, the persistent-cache smoke, the cluster chaos smoke,
# the async-job/audit smoke, the benchmark snapshots, then the
# regression comparison against the committed baselines. The comparison
# is soft here as in CI (shared runners are noisy) — run `make
# benchdiff` for the hard-failing version.
ci: fmt vet build test race fuzz smoke-strategies smoke-server smoke-store smoke-cluster smoke-jobs smoke-corpus bench bench-server bench-cluster benchdiff-soft

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The batch driver allocates routines concurrently; the race detector
# guards the no-shared-mutable-state contract of core.Allocate (and,
# since the telemetry subsystem, the concurrent metrics registry and
# trace recorder).
race:
	$(GO) test -race ./...

# verify runs the independent post-allocation checker over the whole
# benchmark suite: every kernel and callee, both allocator modes, at
# standard and starved register counts, asserting zero degradations.
verify:
	$(GO) test -run 'TestKernelsVerify' ./internal/suite

# fuzz gives each native fuzz target a short smoke run; longer runs are
# the same commands with a bigger -fuzztime.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 5s ./internal/iloc
	$(GO) test -run '^$$' -fuzz FuzzAllocate -fuzztime 5s ./internal/core

# smoke-strategies runs one small kernel through every registered
# allocation strategy with the verifier on and degradation disabled:
# each strategy must produce independently verified code.
smoke-strategies:
	@for s in $$($(GO) run ./cmd/ralloc -list-strategies | awk '{print $$1}'); do \
		echo "smoke-strategies: $$s"; \
		$(GO) run ./cmd/ralloc -strategy "$$s" -strict testdata/fig1.iloc >/dev/null || exit 1; \
	done

# smoke-server boots rallocd on an ephemeral port, pushes one verified
# allocation through it with rallocload, and asserts a clean SIGTERM
# drain.
smoke-server:
	sh scripts/server_smoke.sh

# smoke-store proves the persistent cache tier end to end: a daemon
# restart serves byte-identical disk-tier hits; a bundle exported over
# GET /v1/cache/bundle warms a fresh daemon before its first request;
# a deliberately corrupted entry is quarantined and never served.
smoke-store:
	sh scripts/store_smoke.sh

# smoke-cluster is the chaos gate: three rallocd backends behind
# rallocproxy, content-keyed routing proven by warm cache hits through
# the proxy, then the backend owning the workload is SIGKILLed
# mid-load. Zero contract violations allowed (only 200/429, every 200
# verified), the breaker must open and recover when the backend
# restarts, and the whole cluster must drain cleanly.
smoke-cluster:
	sh scripts/cluster_smoke.sh

# smoke-corpus proves the corpus engine and machine zoo end to end: a
# small spec generated twice byte-identically, hash-verified by
# inspect, then replayed through a live rallocd on two zoo machines
# with every request a verified 200; an unknown -machine must fail
# fast naming the registered ones.
smoke-corpus:
	sh scripts/corpus_smoke.sh

# smoke-jobs proves the async job API byte-identical to the sync path
# through the routing proxy — submit POST /v1/jobs, poll, stream NDJSON
# results, compare code bytes against a sync run — and requires the
# cluster-wide audit stream (GET /v1/audit?flush=1) lossless: verdicts
# logged, zero drops, everything flushed, job-attributed records on
# disk after the drain.
smoke-jobs:
	sh scripts/jobs_smoke.sh

# bench runs the go-test benchmark suite, then the batch-driver
# benchmark, which snapshots routines/sec, parallel speedup, cache hit
# rate and a generated-corpus replay leg into BENCH_driver.json
# (uploaded as a CI artifact).
bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .
	$(GO) run ./cmd/driverbench -corpus count=200,seed=7 -out BENCH_driver.json

# bench-server drives a live rallocd closed-loop and snapshots
# throughput and latency quantiles into BENCH_server.json.
bench-server:
	sh scripts/server_bench.sh BENCH_server.json

# bench-cluster drives three rallocd backends through rallocproxy
# closed-loop (cold then warm phase) and snapshots the through-proxy
# throughput and latency quantiles into BENCH_cluster.json.
bench-cluster:
	sh scripts/cluster_bench.sh BENCH_cluster.json

# benchdiff gates the fresh snapshots against their committed
# baselines: >20% routines/sec regression for the driver report, >20%
# throughput drop or p99 rise for the serving and cluster reports.
benchdiff:
	$(GO) run ./cmd/benchdiff \
		-pair BENCH_baseline.json:BENCH_driver.json \
		-pair BENCH_server_baseline.json:BENCH_server.json \
		-pair BENCH_cluster_baseline.json:BENCH_cluster.json

benchdiff-soft:
	@$(GO) run ./cmd/benchdiff \
		-pair BENCH_baseline.json:BENCH_driver.json \
		-pair BENCH_server_baseline.json:BENCH_server.json \
		-pair BENCH_cluster_baseline.json:BENCH_cluster.json \
		|| echo "benchdiff: regression reported above (soft-fail; see make benchdiff)"
