# Tier-1 verification: formatting, vet, build, tests. CI and the README
# both point here; `make check` must pass before merging.

GO ?= go

.PHONY: check fmt vet build test race verify fuzz bench

check: fmt vet build test race verify fuzz

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The batch driver allocates routines concurrently; the race detector
# guards the no-shared-mutable-state contract of core.Allocate.
race:
	$(GO) test -race ./...

# verify runs the independent post-allocation checker over the whole
# benchmark suite: every kernel and callee, both allocator modes, at
# standard and starved register counts, asserting zero degradations.
verify:
	$(GO) test -run 'TestKernelsVerify' ./internal/suite

# fuzz gives each native fuzz target a short smoke run; longer runs are
# the same commands with a bigger -fuzztime.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 5s ./internal/iloc
	$(GO) test -run '^$$' -fuzz FuzzAllocate -fuzztime 5s ./internal/core

# bench runs the go-test benchmark suite, then the batch-driver
# benchmark, which snapshots routines/sec, parallel speedup and cache
# hit rate into BENCH_driver.json.
bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .
	$(GO) run ./cmd/driverbench -out BENCH_driver.json
